//! Shapes, strides and index arithmetic for dense row-major tensors.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The dimensions of a dense, row-major tensor.
///
/// A `Shape` is an ordered list of dimension sizes. The rightmost dimension
/// varies fastest in memory (C order). Zero-sized dimensions are permitted
/// (the tensor then holds no elements), but a `Shape` always has at least one
/// axis.
///
/// # Examples
///
/// ```
/// use mfdfp_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a list of dimension sizes.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty; scalars are represented as `[1]`.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        Shape { dims }
    }

    /// Shape of a 1-D tensor of length `n`.
    pub fn d1(n: usize) -> Self {
        Shape::new(vec![n])
    }

    /// Shape of a 2-D (rows × cols) tensor.
    pub fn d2(rows: usize, cols: usize) -> Self {
        Shape::new(vec![rows, cols])
    }

    /// Shape of a 4-D NCHW tensor (batch, channels, height, width).
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape::new(vec![n, c, h, w])
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of all dimensions).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Size of axis `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat offset.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the index rank mismatches or any
    /// coordinate is out of bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.dims.len(), "index rank mismatch");
        let mut off = 0usize;
        let mut stride = 1usize;
        for axis in (0..self.dims.len()).rev() {
            debug_assert!(
                index[axis] < self.dims[axis],
                "index {} out of bounds for axis {} (size {})",
                index[axis],
                axis,
                self.dims[axis]
            );
            off += index[axis] * stride;
            stride *= self.dims[axis];
        }
        off
    }

    /// Interprets this shape as NCHW, returning `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 4.
    pub fn as_nchw(&self) -> (usize, usize, usize, usize) {
        assert_eq!(self.rank(), 4, "expected rank-4 NCHW shape, got {self}");
        (self.dims[0], self.dims[1], self.dims[2], self.dims[3])
    }

    /// Returns `true` if `other` has the same total element count, making a
    /// reshape between the two valid.
    pub fn reshape_compatible(&self, other: &Shape) -> bool {
        self.len() == other.len()
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape({:?})", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::new(vec![2, 3, 4]).len(), 24);
        assert_eq!(Shape::d1(7).len(), 7);
        assert_eq!(Shape::d2(3, 5).len(), 15);
    }

    #[test]
    fn zero_dim_yields_empty() {
        let s = Shape::new(vec![4, 0, 2]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_dims_panics() {
        let _ = Shape::new(vec![]);
    }

    #[test]
    fn row_major_strides() {
        assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::d1(5).strides(), vec![1]);
        assert_eq!(Shape::nchw(2, 3, 8, 8).strides(), vec![192, 64, 8, 1]);
    }

    #[test]
    fn offset_round_trips_all_indices() {
        let s = Shape::new(vec![3, 4, 5]);
        let mut seen = vec![false; s.len()];
        for i in 0..3 {
            for j in 0..4 {
                for k in 0..5 {
                    let off = s.offset(&[i, j, k]);
                    assert!(!seen[off], "offset {off} visited twice");
                    seen[off] = true;
                }
            }
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(vec![2, 3, 4]);
        let strides = s.strides();
        assert_eq!(s.offset(&[1, 2, 3]), strides[0] + 2 * strides[1] + 3 * strides[2]);
    }

    #[test]
    fn nchw_accessor() {
        let s = Shape::nchw(8, 3, 32, 32);
        assert_eq!(s.as_nchw(), (8, 3, 32, 32));
    }

    #[test]
    #[should_panic(expected = "rank-4")]
    fn nchw_accessor_wrong_rank_panics() {
        Shape::d2(3, 3).as_nchw();
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "[2×3]");
    }

    #[test]
    fn from_array_and_slice() {
        let a: Shape = [2, 3].into();
        let b: Shape = vec![2, 3].into();
        assert_eq!(a, b);
    }

    #[test]
    fn reshape_compatibility() {
        assert!(Shape::new(vec![2, 6]).reshape_compatible(&Shape::new(vec![3, 4])));
        assert!(!Shape::new(vec![2, 6]).reshape_compatible(&Shape::new(vec![3, 5])));
    }
}
