//! Seeded random tensor initialisation (Gaussian, Xavier, He, uniform).

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Shape, Tensor};

/// A deterministic tensor initialiser wrapping a seeded [`StdRng`].
///
/// Every experiment in this workspace is reproducible bit-for-bit; all
/// randomness flows through explicit seeds.
///
/// # Examples
///
/// ```
/// use mfdfp_tensor::TensorRng;
///
/// let mut a = TensorRng::seed_from(42);
/// let mut b = TensorRng::seed_from(42);
/// assert_eq!(a.gaussian([4], 0.0, 1.0).as_slice(), b.gaussian([4], 0.0, 1.0).as_slice());
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    rng: StdRng,
}

impl TensorRng {
    /// Creates an initialiser from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        TensorRng { rng: StdRng::seed_from_u64(seed) }
    }

    /// Standard normal sample via Box–Muller (avoids a rand_distr dep).
    fn randn(&mut self) -> f32 {
        let u = Uniform::new(f32::EPSILON, 1.0f32);
        let u1 = u.sample(&mut self.rng);
        let u2 = u.sample(&mut self.rng);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Tensor of i.i.d. Gaussian samples `N(mean, std²)`.
    pub fn gaussian(&mut self, shape: impl Into<Shape>, mean: f32, std: f32) -> Tensor {
        let shape = shape.into();
        let len = shape.len();
        let data = (0..len).map(|_| mean + std * self.randn()).collect();
        Tensor::from_vec(data, shape).expect("length matches by construction")
    }

    /// Tensor of i.i.d. uniform samples in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, shape: impl Into<Shape>, lo: f32, hi: f32) -> Tensor {
        assert!(lo < hi, "uniform range must satisfy lo < hi");
        let shape = shape.into();
        let len = shape.len();
        let u = Uniform::new(lo, hi);
        let data = (0..len).map(|_| u.sample(&mut self.rng)).collect();
        Tensor::from_vec(data, shape).expect("length matches by construction")
    }

    /// Xavier/Glorot uniform initialisation for a layer with the given
    /// fan-in and fan-out: `U(±sqrt(6/(fan_in+fan_out)))`.
    pub fn xavier(&mut self, shape: impl Into<Shape>, fan_in: usize, fan_out: usize) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        self.uniform(shape, -bound, bound)
    }

    /// He/Kaiming Gaussian initialisation (suits ReLU networks):
    /// `N(0, 2/fan_in)`.
    pub fn he(&mut self, shape: impl Into<Shape>, fan_in: usize) -> Tensor {
        let std = (2.0 / fan_in as f32).sqrt();
        self.gaussian(shape, 0.0, std)
    }

    /// A uniformly random `usize` below `bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        Uniform::new(0, bound).sample(&mut self.rng)
    }

    /// A uniformly random boolean with probability `p` of `true`.
    pub fn coin(&mut self, p: f32) -> bool {
        Uniform::new(0.0f32, 1.0).sample(&mut self.rng) < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = Uniform::new(0, i + 1).sample(&mut self.rng);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TensorRng::seed_from(7);
        let mut b = TensorRng::seed_from(7);
        assert_eq!(a.gaussian([16], 0.0, 1.0).as_slice(), b.gaussian([16], 0.0, 1.0).as_slice());
        assert_eq!(a.index(100), b.index(100));
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = TensorRng::seed_from(1);
        let mut b = TensorRng::seed_from(2);
        assert_ne!(a.gaussian([16], 0.0, 1.0).as_slice(), b.gaussian([16], 0.0, 1.0).as_slice());
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = TensorRng::seed_from(123);
        let t = rng.gaussian([10_000], 1.0, 2.0);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = TensorRng::seed_from(5);
        let t = rng.uniform([1000], -0.25, 0.25);
        assert!(t.max() < 0.25);
        assert!(t.min() >= -0.25);
    }

    #[test]
    fn xavier_bound_scales_with_fans() {
        let mut rng = TensorRng::seed_from(5);
        let wide = rng.xavier([1000], 10, 10);
        let narrow = rng.xavier([1000], 1000, 1000);
        assert!(wide.abs_max() > narrow.abs_max());
    }

    #[test]
    fn he_std_scales_with_fan_in() {
        let mut rng = TensorRng::seed_from(5);
        let t = rng.he([10_000], 50);
        let std = t.norm_sq() / t.len() as f32;
        assert!((std - 2.0 / 50.0).abs() < 0.01, "std² {std}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = TensorRng::seed_from(9);
        let mut xs: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn coin_probability() {
        let mut rng = TensorRng::seed_from(11);
        let heads = (0..10_000).filter(|_| rng.coin(0.3)).count();
        assert!((heads as f32 / 10_000.0 - 0.3).abs() < 0.03);
    }
}
