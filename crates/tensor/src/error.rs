//! Error type shared by fallible tensor operations.

use std::error::Error;
use std::fmt;

use crate::Shape;

/// Errors produced by tensor construction and shape-checked operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The supplied data length does not match the shape's element count.
    DataLength {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Shape,
        /// Shape of the right operand.
        right: Shape,
        /// The operation that failed.
        op: &'static str,
    },
    /// A reshape changed the number of elements.
    ReshapeLength {
        /// Original shape.
        from: Shape,
        /// Requested shape.
        to: Shape,
    },
    /// An axis index was out of range for the tensor rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor rank.
        rank: usize,
    },
    /// Convolution/pooling geometry does not produce a positive output size.
    BadGeometry(String),
    /// A quantized-kernel operand or accumulator left its hardware register
    /// width (the software rendition of the datapath's overflow audit).
    QuantizedOverflow {
        /// The offending value.
        value: i64,
        /// The register width it had to fit.
        bits: u8,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DataLength { expected, actual } => {
                write!(f, "data length {actual} does not match shape element count {expected}")
            }
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "shape mismatch in {op}: {left} vs {right}")
            }
            TensorError::ReshapeLength { from, to } => {
                write!(
                    f,
                    "cannot reshape {from} ({} elems) to {to} ({} elems)",
                    from.len(),
                    to.len()
                )
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::BadGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::QuantizedOverflow { value, bits } => {
                write!(f, "quantized value {value} does not fit a {bits}-bit register")
            }
        }
    }
}

impl Error for TensorError {}

/// Convenience alias for tensor results.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TensorError::DataLength { expected: 4, actual: 3 };
        assert_eq!(e.to_string(), "data length 3 does not match shape element count 4");
        let e =
            TensorError::ShapeMismatch { left: Shape::d2(2, 3), right: Shape::d2(3, 2), op: "add" };
        assert!(e.to_string().contains("add"));
        let e = TensorError::AxisOutOfRange { axis: 5, rank: 2 };
        assert!(e.to_string().contains("axis 5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
