//! The dense `f32` tensor type and its element-wise operations.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::error::{Result, TensorError};
use crate::Shape;

/// A dense, row-major, heap-allocated `f32` tensor.
///
/// This is the numeric workhorse of the workspace: activations, weights and
/// gradients are all `Tensor`s. Storage is always contiguous; views are not
/// supported (operations copy), which keeps the implementation simple and
/// predictable for a reproduction codebase.
///
/// # Examples
///
/// ```
/// use mfdfp_tensor::{Shape, Tensor};
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::d2(2, 2))?;
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// # Ok::<(), mfdfp_tensor::TensorError>(())
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor { shape, data: vec![0.0; len] }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor { shape, data: vec![value; len] }
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if `data.len()` differs from the
    /// shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(TensorError::DataLength { expected: shape.len(), actual: data.len() });
        }
        Ok(Tensor { shape, data })
    }

    /// Builds a 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor { shape: Shape::d1(data.len()), data: data.to_vec() }
    }

    /// Builds a tensor by evaluating `f` at every flat index.
    pub fn from_fn(shape: impl Into<Shape>, f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        let data = (0..shape.len()).map(f).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) when the index is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element access at a multi-dimensional index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Returns a copy with a new shape holding the same elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeLength`] if element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if !self.shape.reshape_compatible(&shape) {
            return Err(TensorError::ReshapeLength { from: self.shape.clone(), to: shape });
        }
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// Reshapes in place (no copy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeLength`] if element counts differ.
    pub fn reshape_in_place(&mut self, shape: impl Into<Shape>) -> Result<()> {
        let shape = shape.into();
        if !self.shape.reshape_compatible(&shape) {
            return Err(TensorError::ReshapeLength { from: self.shape.clone(), to: shape });
        }
        self.shape = shape;
        Ok(())
    }

    /// Flattens to 1-D, preserving element order.
    pub fn flattened(&self) -> Tensor {
        Tensor { shape: Shape::d1(self.data.len()), data: self.data.clone() }
    }

    /// Applies `f` element-wise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` element-wise in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors element-wise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        self.check_same_shape(other, "zip_map")?;
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Ok(Tensor { shape: self.shape.clone(), data })
    }

    /// `self += alpha * other`, the BLAS `axpy` primitive.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "axpy")?;
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Sets every element to zero.
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest element (−∞ for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element (+∞ for empty tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Largest absolute value (0 for empty tensors).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Index of the largest element in the flattened buffer.
    ///
    /// Ties resolve to the earliest index. Returns 0 for empty tensors.
    pub fn argmax(&self) -> usize {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Dot product with another tensor of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        self.check_same_shape(other, "dot")?;
        Ok(self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).sum())
    }

    /// Extracts the `n`-th slice along axis 0 (e.g. one sample of a batch).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn index_axis0(&self, n: usize) -> Tensor {
        let d0 = self.shape.dim(0);
        assert!(n < d0, "axis-0 index {n} out of range (size {d0})");
        let inner: usize = self.shape.dims()[1..].iter().product();
        let data = self.data[n * inner..(n + 1) * inner].to_vec();
        let dims: Vec<usize> =
            if self.shape.rank() == 1 { vec![1] } else { self.shape.dims()[1..].to_vec() };
        Tensor { shape: Shape::new(dims), data }
    }

    /// Stacks same-shaped tensors along a new leading axis: `k` tensors of
    /// shape `d…` become one tensor of shape `k×d…`. This is the batch
    /// assembly primitive the serving runtime uses to coalesce queued
    /// single-image requests into one `N×C×H×W` inference batch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] for an empty item list and
    /// [`TensorError::ShapeMismatch`] when items disagree on shape.
    pub fn stack_axis0(items: &[Tensor]) -> Result<Tensor> {
        let Some(first) = items.first() else {
            return Err(TensorError::DataLength { expected: 1, actual: 0 });
        };
        let mut data = Vec::with_capacity(items.len() * first.len());
        for item in items {
            if item.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    left: first.shape.clone(),
                    right: item.shape.clone(),
                    op: "stack_axis0",
                });
            }
            data.extend_from_slice(&item.data);
        }
        let mut dims = Vec::with_capacity(first.shape.rank() + 1);
        dims.push(items.len());
        dims.extend_from_slice(first.shape.dims());
        Ok(Tensor { shape: Shape::new(dims), data })
    }

    /// Splits along axis 0 into its slices (inverse of
    /// [`Tensor::stack_axis0`] up to the leading unit axis): an `N×d…`
    /// tensor becomes `N` tensors of shape `d…`. The serving runtime uses
    /// this to scatter a batched logits matrix back into per-request
    /// responses.
    pub fn unstack_axis0(&self) -> Vec<Tensor> {
        (0..self.shape.dim(0)).map(|n| self.index_axis0(n)).collect()
    }

    /// Writes `src` into the `n`-th slice along axis 0.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range or the slice sizes differ.
    pub fn set_axis0(&mut self, n: usize, src: &Tensor) {
        let d0 = self.shape.dim(0);
        assert!(n < d0, "axis-0 index {n} out of range (size {d0})");
        let inner: usize = self.shape.dims()[1..].iter().product();
        assert_eq!(src.len(), inner, "slice length mismatch");
        self.data[n * inner..(n + 1) * inner].copy_from_slice(&src.data);
    }

    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
                op,
            });
        }
        Ok(())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{:?}, …; {}]", &self.data[..8], self.data.len())
        }
    }
}

impl Index<usize> for Tensor {
    type Output = f32;

    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Tensor {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ; use [`Tensor::zip_map`] for a fallible
    /// variant.
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a + b).expect("shape mismatch in tensor addition")
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a - b).expect("shape mismatch in tensor subtraction")
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;

    fn mul(self, rhs: f32) -> Tensor {
        self.map(|x| x * rhs)
    }
}

impl AddAssign<&Tensor> for Tensor {
    /// # Panics
    ///
    /// Panics when shapes differ.
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy(1.0, rhs).expect("shape mismatch in tensor +=");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let o = Tensor::ones([2, 2]);
        assert_eq!(o.sum(), 4.0);
        let f = Tensor::full([3], 2.5);
        assert_eq!(f.as_slice(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], Shape::d2(2, 3)).is_ok());
        let err = Tensor::from_vec(vec![1.0; 5], Shape::d2(2, 3)).unwrap_err();
        assert_eq!(err, TensorError::DataLength { expected: 6, actual: 5 });
    }

    #[test]
    fn multi_index_access() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), Shape::new(vec![2, 3, 4]))
            .unwrap();
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
        assert_eq!(t.at(&[1, 0, 2]), 14.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let r = t.reshape([2, 2]).unwrap();
        assert_eq!(r.at(&[1, 1]), 4.0);
        assert!(t.reshape([3, 2]).is_err());
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let b = a.map(f32::abs);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0]);
        let c = a.zip_map(&b, |x, y| x + y).unwrap();
        assert_eq!(c.as_slice(), &[2.0, 0.0, 6.0]);
        let bad = Tensor::from_slice(&[1.0]);
        assert!(a.zip_map(&bad, |x, _| x).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let g = Tensor::from_slice(&[2.0, -4.0]);
        a.axpy(0.5, &g).unwrap();
        assert_eq!(a.as_slice(), &[2.0, -1.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[-3.0, 1.0, 2.0]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max(), 2.0);
        assert_eq!(t.min(), -3.0);
        assert_eq!(t.abs_max(), 3.0);
        assert_eq!(t.argmax(), 2);
        assert_eq!(t.norm_sq(), 14.0);
    }

    #[test]
    fn argmax_prefers_first_on_ties() {
        let t = Tensor::from_slice(&[1.0, 5.0, 5.0]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn axis0_slicing_round_trip() {
        let t =
            Tensor::from_vec((0..12).map(|i| i as f32).collect(), Shape::new(vec![3, 4])).unwrap();
        let row1 = t.index_axis0(1);
        assert_eq!(row1.as_slice(), &[4.0, 5.0, 6.0, 7.0]);
        let mut t2 = Tensor::zeros([3, 4]);
        t2.set_axis0(1, &row1);
        assert_eq!(t2.at(&[1, 2]), 6.0);
        assert_eq!(t2.at(&[0, 0]), 0.0);
    }

    #[test]
    fn stack_axis0_builds_batches() {
        let a = Tensor::from_vec(vec![1.0, 2.0], Shape::d2(1, 2)).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], Shape::d2(1, 2)).unwrap();
        let batch = Tensor::stack_axis0(&[a.clone(), b]).unwrap();
        assert_eq!(batch.shape().dims(), &[2, 1, 2]);
        assert_eq!(batch.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        // Errors: empty list, mismatched shapes.
        assert!(Tensor::stack_axis0(&[]).is_err());
        let c = Tensor::from_slice(&[9.0]);
        assert!(Tensor::stack_axis0(&[a, c]).is_err());
    }

    #[test]
    fn unstack_inverts_stack() {
        let items: Vec<Tensor> =
            (0..3).map(|i| Tensor::from_fn([2, 2], |j| (i * 4 + j) as f32)).collect();
        let batch = Tensor::stack_axis0(&items).unwrap();
        let back = batch.unstack_axis0();
        assert_eq!(back.len(), 3);
        for (orig, got) in items.iter().zip(&back) {
            assert_eq!(orig.as_slice(), got.as_slice());
            assert_eq!(orig.shape(), got.shape());
        }
    }

    #[test]
    fn operators() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn debug_is_nonempty_and_bounded() {
        let small = Tensor::from_slice(&[1.0]);
        assert!(!format!("{small:?}").is_empty());
        let big = Tensor::zeros([100]);
        assert!(format!("{big:?}").len() < 300);
    }

    #[test]
    fn from_fn_uses_flat_index() {
        let t = Tensor::from_fn([2, 2], |i| i as f32);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }
}
