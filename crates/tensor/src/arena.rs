//! Aligned scratch arenas — typed, grow-only buffers over the 64-byte
//! [`AlignedBytes`] storage cell from `mfdfp-dfp`.
//!
//! Three layers share one alignment story:
//!
//! * [`AlignedBytes`] (re-exported from [`mfdfp_dfp::aligned`]) is the raw
//!   cell — `std::alloc::Layout`-allocated bytes whose base pointer is
//!   always 64-byte aligned, with validated typed views.
//! * [`AlignedVec`] is `Vec<T>` with that alignment guarantee: the
//!   [`Workspace`](crate::Workspace) activation/im2col/accumulator lanes
//!   are built on it, so every kernel scratch pointer is cache-line (and
//!   AVX-512 lane) aligned by construction rather than by allocator luck.
//! * [`AlignedArena`] is an append-only byte builder with explicit
//!   alignment control — the deployment-image writer in `mfdfp-core` lays
//!   out header, section table and weight payloads through it, so every
//!   recorded offset is aligned the moment it is written.

use std::marker::PhantomData;

pub use mfdfp_dfp::aligned::{AlignedBytes, Pod, ALIGN};

/// A growable typed buffer whose base pointer is always 64-byte aligned.
///
/// Supports the `Vec` subset the inference hot path needs — `resize`,
/// `reserve`, `extend_from_slice`, slice deref — with the alignment of
/// the backing memory part of the type's contract. Lengths may shrink
/// (cheap, just a counter), but capacity never does: like
/// [`Workspace`](crate::Workspace) lanes, an `AlignedVec` warms to its
/// peak and stays there.
///
/// # Examples
///
/// ```
/// use mfdfp_tensor::arena::{AlignedVec, ALIGN};
///
/// let mut v: AlignedVec<i64> = AlignedVec::new();
/// v.resize(5, -1);
/// v[0] = 42;
/// assert_eq!(&v[..], &[42, -1, -1, -1, -1]);
/// assert_eq!(v.as_ptr() as usize % ALIGN, 0);
/// ```
#[derive(Debug, Clone)]
pub struct AlignedVec<T: Pod> {
    /// Backing bytes; `bytes.len()` is the capacity in bytes and is
    /// always fully initialised (zeroed on growth), so any prefix is
    /// safe to view as `[T]`.
    bytes: AlignedBytes,
    /// Logical element count.
    len: usize,
    _elem: PhantomData<T>,
}

impl<T: Pod> AlignedVec<T> {
    /// An empty vector; allocates nothing until elements are added.
    pub const fn new() -> Self {
        AlignedVec { bytes: AlignedBytes::new(), len: 0, _elem: PhantomData }
    }

    /// An empty vector with room for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        let mut v = Self::new();
        v.reserve(cap);
        v
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Elements the vector can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.bytes.len() / std::mem::size_of::<T>()
    }

    /// Ensures capacity for at least `cap` elements without changing the
    /// length; never shrinks.
    pub fn reserve(&mut self, cap: usize) {
        self.bytes.grow_zeroed(cap * std::mem::size_of::<T>());
    }

    /// Resizes to `len` elements; new elements are `fill`. Shrinking only
    /// drops the logical length — capacity is retained, so a warmed
    /// buffer never re-allocates for a smaller pass.
    pub fn resize(&mut self, len: usize, fill: T) {
        if len > self.capacity() {
            self.reserve(len);
        }
        if len > self.len {
            let spare: &mut [T] = {
                // SAFETY: capacity covers `len`, the backing bytes are
                // initialised, and `T: Pod` accepts any bit pattern.
                unsafe { std::slice::from_raw_parts_mut(self.bytes.as_mut_ptr().cast::<T>(), len) }
            };
            spare[self.len..len].fill(fill);
        }
        self.len = len;
    }

    /// Drops all elements (capacity retained).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Appends `items` at the end.
    pub fn extend_from_slice(&mut self, items: &[T]) {
        if items.is_empty() {
            return;
        }
        let old = self.len;
        let new = old + items.len();
        if new > self.capacity() {
            self.reserve(new);
        }
        // The backing bytes are initialised up to capacity, so bumping the
        // length before the copy only exposes zeroed (valid Pod) values.
        self.len = new;
        self.as_mut_slice()[old..].copy_from_slice(items);
    }

    /// Appends one element.
    pub fn push(&mut self, item: T) {
        self.extend_from_slice(&[item]);
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: `len * size_of::<T>() <= bytes.len()` (invariant), the
        // bytes are initialised, the 64-byte base alignment covers every
        // Pod type, and `T: Pod` accepts any bit pattern.
        unsafe { std::slice::from_raw_parts(self.bytes.as_ptr().cast::<T>(), self.len) }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        let len = self.len;
        // SAFETY: as `as_slice`, plus `&mut self` guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.bytes.as_mut_ptr().cast::<T>(), len) }
    }

    /// Base pointer (64-byte aligned; dangling-aligned when empty).
    pub fn as_ptr(&self) -> *const T {
        self.bytes.as_ptr().cast::<T>()
    }
}

impl<T: Pod> Default for AlignedVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Pod> std::ops::Deref for AlignedVec<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> std::ops::DerefMut for AlignedVec<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Pod + PartialEq> PartialEq for AlignedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + PartialEq + Eq> Eq for AlignedVec<T> {}

impl<T: Pod> From<&[T]> for AlignedVec<T> {
    fn from(items: &[T]) -> Self {
        let mut v = Self::with_capacity(items.len());
        v.extend_from_slice(items);
        v
    }
}

/// An append-only aligned byte builder — the writer side of the
/// deployment-image story.
///
/// Every `push_*` returns the byte offset where the data landed, and
/// [`AlignedArena::align_to`] pads with zeros so the *next* push starts
/// on a chosen boundary. Because the backing [`AlignedBytes`] base is
/// 64-byte aligned, an offset that is a multiple of `a` is genuinely
/// `a`-aligned in memory — the writer's offsets and the reader's typed
/// views agree by construction.
///
/// # Examples
///
/// ```
/// use mfdfp_tensor::arena::AlignedArena;
///
/// let mut a = AlignedArena::new();
/// a.push_bytes(&[1, 2, 3]);
/// let off = a.align_to(64);
/// assert_eq!(off, 64);
/// let w_off = a.push_bytes(&[9; 10]);
/// assert_eq!(w_off, 64);
/// let img = a.finish();
/// assert_eq!(img.len(), 74);
/// assert_eq!(&img.as_slice()[64..], &[9; 10]);
/// ```
#[derive(Debug, Default)]
pub struct AlignedArena {
    buf: AlignedBytes,
}

impl AlignedArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far — the offset the next unaligned push lands at.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Zero-pads until the length is a multiple of `align` (a power of
    /// two); returns the aligned offset.
    pub fn align_to(&mut self, align: usize) -> usize {
        self.buf.pad_to(align);
        self.buf.len()
    }

    /// Appends raw bytes; returns the offset of the first byte written.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> usize {
        let off = self.buf.len();
        self.buf.extend_from_slice(bytes);
        off
    }

    /// Appends every `i64` as 8 little-endian bytes; returns the offset
    /// of the first value.
    pub fn push_i64_le(&mut self, vals: &[i64]) -> usize {
        let off = self.buf.len();
        for v in vals {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        off
    }

    /// A view of the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        self.buf.as_slice()
    }

    /// Overwrites `dst..dst + src.len()` with `src` — back-patching a
    /// header field whose value (e.g. a table offset) is only known after
    /// later sections land.
    ///
    /// # Panics
    ///
    /// Panics if the range runs past the bytes written so far.
    pub fn patch(&mut self, dst: usize, src: &[u8]) {
        self.buf.as_mut_slice()[dst..dst + src.len()].copy_from_slice(src);
    }

    /// Finishes the build, handing the bytes to the caller.
    pub fn finish(self) -> AlignedBytes {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_vec_behaves_like_vec() {
        let mut v: AlignedVec<i32> = AlignedVec::new();
        assert!(v.is_empty());
        v.resize(3, 7);
        assert_eq!(&v[..], &[7, 7, 7]);
        v[1] = -1;
        v.push(9);
        assert_eq!(&v[..], &[7, -1, 7, 9]);
        v.resize(2, 0);
        assert_eq!(&v[..], &[7, -1]);
        // Regrowing fills with the new value, not stale data.
        v.resize(4, 5);
        assert_eq!(&v[..], &[7, -1, 5, 5]);
        v.extend_from_slice(&[10, 11]);
        assert_eq!(v.len(), 6);
        assert_eq!(&v[4..], &[10, 11]);
    }

    #[test]
    fn aligned_vec_pointers_are_aligned() {
        for n in [1usize, 17, 64, 1000] {
            let mut v: AlignedVec<i8> = AlignedVec::new();
            v.resize(n, 1);
            assert_eq!(v.as_ptr() as usize % ALIGN, 0, "n={n}");
        }
        let mut w: AlignedVec<i64> = AlignedVec::with_capacity(4);
        assert!(w.capacity() >= 4);
        w.resize(4, -3);
        assert_eq!(w.as_ptr() as usize % ALIGN, 0);
    }

    #[test]
    fn aligned_vec_shrink_keeps_capacity() {
        let mut v: AlignedVec<f32> = AlignedVec::new();
        v.resize(100, 0.5);
        let cap = v.capacity();
        v.resize(3, 0.0);
        assert_eq!(v.capacity(), cap);
        v.clear();
        assert_eq!(v.capacity(), cap);
        assert!(v.is_empty());
    }

    #[test]
    fn aligned_vec_eq_and_from_slice() {
        let a: AlignedVec<i64> = AlignedVec::from(&[1i64, 2, 3][..]);
        let b: AlignedVec<i64> = AlignedVec::from(&[1i64, 2, 3][..]);
        let c: AlignedVec<i64> = AlignedVec::from(&[1i64, 2, 4][..]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn arena_layout_is_deterministic() {
        let mut a = AlignedArena::new();
        assert!(a.is_empty());
        let h = a.push_bytes(&[0xAB; 10]);
        assert_eq!(h, 0);
        let aligned = a.align_to(64);
        assert_eq!(aligned % 64, 0);
        let w = a.push_i64_le(&[-2, 3]);
        assert_eq!(w, 64);
        assert_eq!(a.len(), 80);
        let img = a.finish();
        assert_eq!(img.view::<i64>(64, 2).unwrap(), &[-2, 3]);
        assert!(img.as_slice()[10..64].iter().all(|&b| b == 0), "padding is zeroed");
    }

    #[test]
    fn arena_patch_overwrites_in_place() {
        let mut a = AlignedArena::new();
        a.push_bytes(&[0u8; 16]);
        a.patch(4, &0xDEADBEEFu32.to_le_bytes());
        let img = a.finish();
        assert_eq!(img.view::<u32>(4, 1).unwrap(), &[0xDEADBEEF]);
    }
}
