//! End-to-end model-image integrity: every deployment artefact (model
//! image, zoo) carries a whole-section CRC-32, so a corrupted byte
//! anywhere — weights, scales, directory, names — surfaces as a *typed*
//! load error before a single weight byte is served, never as a panic
//! and never as silently wrong logits. Persistence is crash-safe
//! ([`write_image_atomic`]): a concurrent reader can only ever observe a
//! complete old or complete new image, whose CRC then vouches for every
//! byte.
//!
//! [`write_image_atomic`]: mfdfp_core::write_image_atomic

use std::sync::Arc;

use mfdfp_core::{
    calibrate, to_image, write_image_atomic, AlignedBytes, ImageView, QuantizedNet, ZooBuilder,
    ZooView,
};
use mfdfp_nn::zoo;
use mfdfp_serve::{ModelRegistry, ServeConfig, Server};
use mfdfp_tensor::{Tensor, TensorRng};

/// A small calibrated MF-DFP network (3×16×16 input, 10 classes).
fn tiny_qnet(seed: u64) -> QuantizedNet {
    let mut rng = TensorRng::seed_from(seed);
    let mut net = zoo::quick_custom(3, 16, [2, 2, 4], 8, 10, &mut rng).unwrap();
    let x = rng.gaussian([4, 3, 16, 16], 0.0, 0.7);
    let plan = calibrate(&mut net, &[(x, vec![0, 1, 2, 3])], 8).unwrap();
    QuantizedNet::from_network(&net, &plan).unwrap()
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn two_model_zoo() -> (Vec<(String, QuantizedNet)>, Vec<u8>) {
    let nets: Vec<(String, QuantizedNet)> =
        (0..2u64).map(|i| (format!("m{i}"), tiny_qnet(300 + i))).collect();
    let mut builder = ZooBuilder::new();
    for (name, net) in &nets {
        builder.push(name, net);
    }
    (nets, builder.finish().as_slice().to_vec())
}

/// The proptest: flip one byte (every offset in the headers/directory,
/// a dense stride through the payload) and the zoo must be rejected
/// with a typed error — no panic, nothing registered, no weight byte
/// ever served. CRC-32 detects *all* single-byte corruptions, so there
/// are no survivable offsets to carve out.
#[test]
fn any_single_byte_flip_in_a_zoo_is_rejected_typed() {
    let (_, bytes) = two_model_zoo();
    // Every byte of the first 256 (zoo header + directory + the first
    // model's header — the parsing-sensitive region), then a stride
    // through the weight payload, then the tail.
    let mut offsets: Vec<usize> = (0..256.min(bytes.len())).collect();
    offsets.extend((256..bytes.len()).step_by(97));
    offsets.extend(bytes.len().saturating_sub(8)..bytes.len());

    for off in offsets {
        let mut corrupt = bytes.clone();
        corrupt[off] ^= 0x40;
        let registry = ModelRegistry::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            registry.load_zoo_bytes(&corrupt)
        }));
        let result = result.unwrap_or_else(|_| panic!("flip at byte {off} panicked the loader"));
        assert!(result.is_err(), "flip at byte {off} was not detected");
        assert!(registry.is_empty(), "flip at byte {off} still registered models");
    }
}

#[test]
fn single_byte_flip_in_a_model_image_is_rejected_typed() {
    let net = tiny_qnet(42);
    let image = to_image(&net);
    let bytes = image.as_slice();
    let mut offsets: Vec<usize> = (0..128.min(bytes.len())).collect();
    offsets.extend((128..bytes.len()).step_by(61));

    for off in offsets {
        let mut corrupt = bytes.to_vec();
        corrupt[off] ^= 0x01;
        let view = ImageView::open(Arc::new(AlignedBytes::from_slice(&corrupt)));
        assert!(
            view.and_then(|v| QuantizedNet::from_image(&v)).is_err(),
            "flip at byte {off} produced a loadable image"
        );
    }
}

/// Backward compatibility: a pre-checksum v2 image leaves the CRC word
/// and marker zero; such images still load, and serve bit-identically.
#[test]
fn legacy_unchecksummed_zoo_still_loads_and_serves_bit_exact() {
    let (nets, mut bytes) = two_model_zoo();
    // Zero the zoo-level CRC word (32..36) and marker (36..40): the
    // legacy layout. The embedded model images keep their own CRCs.
    bytes[32..40].fill(0);

    let registry = Arc::new(ModelRegistry::new());
    let names = registry.load_zoo_bytes(&bytes).unwrap();
    assert_eq!(names, vec!["m0", "m1"]);

    let server = Server::start(Arc::clone(&registry), ServeConfig::default()).unwrap();
    let img = TensorRng::seed_from(9).gaussian([3, 16, 16], 0.0, 0.7);
    for (name, net) in &nets {
        let response = server.submit(name, img.clone()).unwrap().wait().unwrap();
        assert_eq!(bits(&response.logits), bits(&net.logits(&img).unwrap()));
    }
    server.shutdown();

    // But once stamped, the marker makes verification mandatory: a
    // zeroed word *with* the marker present must be rejected.
    let (_, mut stamped) = two_model_zoo();
    stamped[32..36].fill(0); // word zeroed, marker "CRC1" intact
    assert!(ModelRegistry::new().load_zoo_bytes(&stamped).is_err());
}

/// Crash-safe publication: while a writer repeatedly rewrites the zoo
/// file with [`write_image_atomic`], a concurrent reader re-opening the
/// path must only ever see a complete, CRC-valid generation — never a
/// truncated or mid-write file.
#[test]
fn atomic_rewrites_are_never_observed_torn() {
    const REWRITES: usize = 40;

    let gen_a = {
        let mut b = ZooBuilder::new();
        b.push("gen", &tiny_qnet(70));
        b.finish().as_slice().to_vec()
    };
    let gen_b = {
        let mut b = ZooBuilder::new();
        b.push("gen", &tiny_qnet(71));
        b.finish().as_slice().to_vec()
    };
    assert_ne!(gen_a, gen_b);

    let dir = std::env::temp_dir().join(format!("mfdfp-integrity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("zoo.mfdfp");
    write_image_atomic(&path, &gen_a).unwrap();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reader = {
        let path = path.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut observed = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let bytes = std::fs::read(&path).expect("published path must always exist");
                // Every observable state must be a whole CRC-valid zoo.
                let zoo = ZooView::open(Arc::new(AlignedBytes::from_slice(&bytes)))
                    .expect("reader observed a torn or corrupt image");
                assert_eq!(zoo.names(), vec!["gen"]);
                observed += 1;
            }
            observed
        })
    };

    for i in 0..REWRITES {
        let next = if i % 2 == 0 { &gen_b } else { &gen_a };
        write_image_atomic(&path, next).unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let observed = reader.join().unwrap();
    assert!(observed > 0, "the reader must have actually raced the writer");

    // No temporary files left behind.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n != "zoo.mfdfp")
        .collect();
    assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A failed (corrupt) zoo load must leave an already-serving registry
/// untouched: the previous version keeps serving bit-exactly.
#[test]
fn corrupt_reload_keeps_serving_the_previous_version() {
    let original = tiny_qnet(80);
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m0", original.clone());
    let server = Server::start(Arc::clone(&registry), ServeConfig::default()).unwrap();

    let img = TensorRng::seed_from(11).gaussian([3, 16, 16], 0.0, 0.7);
    let before = server.submit("m0", img.clone()).unwrap().wait().unwrap();
    assert_eq!(bits(&before.logits), bits(&original.logits(&img).unwrap()));
    assert_eq!(before.version, 1);

    // An operator pushes a corrupted replacement zoo (same model name).
    let (_, mut bytes) = two_model_zoo();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    assert!(registry.load_zoo_bytes(&bytes).is_err(), "corrupt zoo must be rejected");

    // The tier never skipped a beat: same version, same bits.
    let after = server.submit("m0", img.clone()).unwrap().wait().unwrap();
    assert_eq!(after.version, 1, "a rejected reload must not bump the version");
    assert_eq!(bits(&after.logits), bits(&original.logits(&img).unwrap()));
    assert_eq!(registry.version("m0").unwrap(), 1);
    server.shutdown();
}
