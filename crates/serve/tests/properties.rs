//! Property-based tests of the serving tier's two contracts that must
//! hold for *arbitrary* inputs:
//!
//! * the hand-rolled HTTP parser never panics, parses back exactly what
//!   [`encode_request`] produces, treats every strict prefix of a valid
//!   request as incomplete (never as complete or invalid), and rejects
//!   oversized input with typed errors;
//! * deadline-shed accounting is **exact**: over any mix of instantly
//!   expiring and never-expiring deadlines,
//!   `completed + failed + shed == submitted` and the shed count equals
//!   precisely the number of already-expired deadlines submitted.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use mfdfp_core::{calibrate, QuantizedNet};
use mfdfp_nn::zoo;
use mfdfp_serve::http::{encode_request, format_f32_array, parse_f32_array, parse_request};
use mfdfp_serve::{
    HttpConfig, ModelRegistry, Priority, ServeConfig, ServeError, Server, SubmitOptions,
};
use mfdfp_tensor::TensorRng;
use proptest::prelude::*;

/// One shared calibrated network (3×16×16 input, 10 classes): the
/// accounting property needs a real model but not a fresh one per case.
fn shared_qnet() -> &'static QuantizedNet {
    static QNET: OnceLock<QuantizedNet> = OnceLock::new();
    QNET.get_or_init(|| {
        let mut rng = TensorRng::seed_from(77);
        let mut net = zoo::quick_custom(3, 16, [2, 2, 4], 8, 10, &mut rng).unwrap();
        let x = rng.gaussian([4, 3, 16, 16], 0.0, 0.7);
        let plan = calibrate(&mut net, &[(x, vec![0, 1, 2, 3])], 8).unwrap();
        QuantizedNet::from_network(&net, &plan).unwrap()
    })
}

/// Draws a string over `alphabet` with a length in `[min_len, max_len)`.
fn string_of(
    alphabet: &'static [u8],
    min_len: usize,
    max_len: usize,
) -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..alphabet.len(), min_len..max_len)
        .prop_map(move |ix| ix.into_iter().map(|i| alphabet[i] as char).collect())
}

/// RFC 7230 token characters (header names, methods).
const TOKEN_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";
/// Path characters the round-trip property exercises.
const PATH_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/_.-";
/// Printable header-value characters, space excluded at the edges by a
/// trim in the strategy (the parser trims values, so untrimmed values
/// would not round-trip verbatim).
const VALUE_CHARS: &[u8] =
    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 !#$%&'()*+,./;<=>?@[]^_`{|}~-";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the parser — every outcome is a typed
    /// tri-state, and a reported `consumed` never overruns the buffer.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..2048),
    ) {
        let config =
            HttpConfig { max_head_bytes: 256, max_body_bytes: 512, ..HttpConfig::default() };
        match parse_request(&bytes, &config) {
            Ok(Some((_, consumed))) => prop_assert!(consumed <= bytes.len()),
            Ok(None) => prop_assert!(bytes.len() <= 256 + 512 + 4),
            Err(e) => {
                let status = e.status();
                prop_assert!((400..=599).contains(&status), "status {status} out of range");
            }
        }
    }

    /// Arbitrary bytes never panic the body parser either.
    #[test]
    fn f32_body_parser_never_panics(
        bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..256),
    ) {
        let _ = parse_f32_array(&bytes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → parse is the identity on method, path, headers and body;
    /// and every strict prefix of the encoding is *incomplete*, never
    /// complete and never an error (truncation is always recoverable).
    #[test]
    fn valid_requests_round_trip_and_prefixes_are_partial(
        method_idx in 0usize..3,
        path_tail in string_of(PATH_CHARS, 0, 24),
        names in proptest::collection::vec(string_of(TOKEN_CHARS, 1, 16), 0..4),
        values in proptest::collection::vec(
            string_of(VALUE_CHARS, 0, 24).prop_map(|s| s.trim().to_string()),
            0..4,
        ),
        body in proptest::collection::vec(proptest::num::u8::ANY, 0..64),
    ) {
        let method = ["GET", "POST", "PUT"][method_idx];
        let path = format!("/{path_tail}");
        let headers: Vec<(&str, &str)> = names
            .iter()
            .zip(&values)
            // content-length/connection/transfer-encoding carry parser
            // semantics; the identity property uses neutral names only.
            .filter(|(n, _)| {
                !["content-length", "connection", "transfer-encoding"]
                    .contains(&n.to_ascii_lowercase().as_str())
            })
            .map(|(n, v)| (n.as_str(), v.as_str()))
            .collect();
        let bytes = encode_request(method, &path, &headers, &body);
        let config = HttpConfig::default();

        let (parsed, consumed) = parse_request(&bytes, &config)
            .expect("valid encoding must parse")
            .expect("complete encoding must be complete");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(parsed.method.as_str(), method);
        prop_assert_eq!(parsed.path.as_str(), path.as_str());
        prop_assert_eq!(&parsed.body, &body);
        for (name, value) in &headers {
            prop_assert_eq!(parsed.header(name), Some(*value));
        }

        // Check a spread of prefixes (every index would be O(n²) work).
        for cut in [0, 1, bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
            if cut < bytes.len() {
                let outcome = parse_request(&bytes[..cut], &config);
                prop_assert_eq!(outcome, Ok(None), "prefix of {} bytes must be partial", cut);
            }
        }
    }

    /// The f32 wire format round-trips bit-exactly for arbitrary finite
    /// values — the foundation of the HTTP tier's bit-exactness tests.
    #[test]
    fn f32_wire_format_is_bit_exact(
        values in proptest::collection::vec(-1e30f32..1e30, 0..64),
    ) {
        let encoded = format_f32_array(&values);
        let decoded = parse_f32_array(encoded.as_bytes()).expect("round trip must parse");
        prop_assert_eq!(values.len(), decoded.len());
        for (a, b) in values.iter().zip(&decoded) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Oversized heads and bodies are rejected with their own typed
    /// errors, at the configured limits exactly.
    #[test]
    fn oversized_input_is_typed(head_limit in 32usize..128, body_limit in 1usize..64) {
        let config = HttpConfig {
            max_head_bytes: head_limit,
            max_body_bytes: body_limit,
            ..HttpConfig::default()
        };
        // A head one byte past the limit (no terminator yet).
        let long = vec![b'G'; head_limit + 1];
        prop_assert_eq!(parse_request(&long, &config).unwrap_err().status(), 431);
        // A declared body one byte past the limit.
        let request =
            format!("POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n", body_limit + 1);
        if request.len() <= head_limit {
            prop_assert_eq!(
                parse_request(request.as_bytes(), &config).unwrap_err().status(),
                413
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exact shed accounting: submit a random mix of already-expired
    /// (zero) and never-expiring deadlines across both priority lanes;
    /// afterwards `completed + failed + shed == submitted` holds exactly,
    /// with `shed` equal to precisely the expired-deadline count.
    #[test]
    fn deadline_shed_accounting_is_exact(
        kinds in proptest::collection::vec((0u8..3, proptest::bool::ANY), 1..40),
    ) {
        let qnet = shared_qnet();
        let registry = Arc::new(ModelRegistry::new());
        registry.register("m", qnet.clone());
        let server = Server::start(
            registry,
            ServeConfig {
                workers: 1,
                queue_capacity: 64,
                max_batch: 8,
                max_wait: Duration::from_micros(200),
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = TensorRng::seed_from(5);

        let mut expected_shed = 0u64;
        let mut expected_completed = 0u64;
        let mut tickets = Vec::new();
        for (kind, high) in &kinds {
            // kind 0: no deadline; 1: never-expiring; 2: already expired.
            let deadline = match kind {
                0 => None,
                1 => Some(Duration::from_secs(600)),
                _ => Some(Duration::ZERO),
            };
            if *kind == 2 {
                expected_shed += 1;
            } else {
                expected_completed += 1;
            }
            let opts = SubmitOptions {
                deadline,
                priority: if *high { Priority::High } else { Priority::Normal },
            };
            let img = rng.gaussian([3, 16, 16], 0.0, 0.7);
            // Closed-loop below capacity: submission cannot be rejected.
            tickets.push((*kind, server.submit_with("m", img, opts).unwrap()));
        }
        let mut shed_seen = 0u64;
        for (kind, ticket) in tickets {
            match ticket.wait() {
                Ok(_) => prop_assert!(kind != 2, "expired deadline must never serve"),
                Err(ServeError::DeadlineExceeded { model }) => {
                    prop_assert_eq!(model.as_str(), "m");
                    prop_assert_eq!(kind, 2, "live deadline must never shed");
                    shed_seen += 1;
                }
                Err(e) => return Err(format!("unexpected error: {e}")),
            }
        }
        let snap = server.metrics();
        prop_assert_eq!(snap.submitted, kinds.len() as u64);
        prop_assert_eq!(snap.shed, expected_shed);
        prop_assert_eq!(shed_seen, expected_shed);
        prop_assert_eq!(snap.completed, expected_completed);
        prop_assert_eq!(snap.failed, 0);
        prop_assert_eq!(
            snap.completed + snap.failed + snap.shed,
            snap.submitted,
            "accounting must balance exactly"
        );
        let m = snap.models.iter().find(|m| m.name == "m").unwrap();
        prop_assert_eq!(m.shed, expected_shed);
        prop_assert_eq!(m.in_flight, 0, "every slot must be released");
        server.shutdown();
    }
}
