//! Fault-injection harness: deterministic failures injected through the
//! compile-time-gated hooks in [`mfdfp_serve::fault`], asserting the
//! serving tier degrades *gracefully* — typed errors, exact accounting,
//! surviving workers — rather than hanging, poisoning a lock, or tearing
//! a response.
//!
//! Runs only with `--features fault` (CI runs it on both the serial and
//! `parallel` scheduler builds). The fault counters are process-global,
//! so every test serialises on one mutex and re-arms from a clean slate.

#![cfg(feature = "fault")]

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use mfdfp_core::{calibrate, QuantizedNet};
use mfdfp_nn::zoo;
use mfdfp_serve::{fault, ModelRegistry, ServeConfig, ServeError, Server};
use mfdfp_tensor::{Tensor, TensorRng};

/// Serialises tests (the armed-fault counters are process-global) and
/// disarms any fault a previous test left behind.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    let guard = GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    fault::reset();
    guard
}

/// A small calibrated MF-DFP network (3×16×16 input, 10 classes).
fn tiny_qnet(seed: u64) -> QuantizedNet {
    let mut rng = TensorRng::seed_from(seed);
    let mut net = zoo::quick_custom(3, 16, [2, 2, 4], 8, 10, &mut rng).unwrap();
    let x = rng.gaussian([4, 3, 16, 16], 0.0, 0.7);
    let plan = calibrate(&mut net, &[(x, vec![0, 1, 2, 3])], 8).unwrap();
    QuantizedNet::from_network(&net, &plan).unwrap()
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn start_server(qnet: &QuantizedNet, config: ServeConfig) -> Server {
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", qnet.clone());
    Server::start(registry, config).unwrap()
}

fn image(seed: u64) -> Tensor {
    TensorRng::seed_from(seed).gaussian([3, 16, 16], 0.0, 0.7)
}

#[test]
fn injected_queue_full_is_typed_backpressure_not_a_hang() {
    let _guard = serial();
    let qnet = tiny_qnet(1);
    let server = start_server(&qnet, ServeConfig::default());

    // Three admissions report a full queue even though it is empty.
    fault::arm_queue_full(3);
    for _ in 0..3 {
        match server.submit("m", image(10)) {
            Err(ServeError::QueueFull { capacity }) => {
                assert!(capacity > 0, "the *configured* capacity must be reported");
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }
    // The fourth admission — fault exhausted — serves normally and
    // bit-exactly.
    let img = image(10);
    let response = server.submit("m", img.clone()).unwrap().wait().unwrap();
    assert_eq!(bits(&response.logits), bits(&qnet.logits(&img).unwrap()));

    let snap = server.metrics();
    // `submitted` counts *admitted* requests only; rejections are their
    // own counter, so `completed + failed + shed == submitted` stays an
    // exact identity under backpressure.
    assert_eq!(snap.submitted, 1);
    assert_eq!(snap.rejected, 3, "every injected rejection must be counted");
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.failed, 0);
    let m = snap.models.iter().find(|m| m.name == "m").unwrap();
    assert_eq!(m.in_flight, 0, "rejected admissions must release their quota slot");
    server.shutdown();
}

#[test]
fn worker_panic_is_contained_and_the_worker_survives() {
    let _guard = serial();
    let qnet = tiny_qnet(2);
    // One worker: the same thread that panics must serve the follow-ups,
    // proving the panic is caught per-dispatch rather than killing it.
    let server =
        start_server(&qnet, ServeConfig { workers: 1, max_batch: 8, ..ServeConfig::default() });

    fault::arm_worker_panic(1);
    let poisoned_ticket = server.submit("m", image(20)).unwrap();
    match poisoned_ticket.wait() {
        Err(ServeError::WorkerPanic) => {}
        other => panic!("expected WorkerPanic, got {other:?}"),
    }

    // The worker thread lives on and no lock was poisoned: later
    // requests serve fine on the same thread.
    for seed in 21..26 {
        let img = image(seed);
        let response = server.submit("m", img.clone()).unwrap().wait().unwrap();
        assert_eq!(bits(&response.logits), bits(&qnet.logits(&img).unwrap()));
    }

    let snap = server.metrics();
    assert_eq!(snap.submitted, 6);
    assert_eq!(snap.failed, 1, "the panicked dispatch must be a counted failure");
    assert_eq!(snap.completed, 5);
    assert_eq!(snap.shed, 0);
    let m = snap.models.iter().find(|m| m.name == "m").unwrap();
    assert_eq!(m.in_flight, 0, "panicked requests must release their quota slot");
    server.shutdown();
}

#[test]
fn panicked_batch_fails_every_ticket_in_it() {
    let _guard = serial();
    let qnet = tiny_qnet(3);
    // A long linger coalesces all the admissions into one batch, so one
    // injected panic must answer *all* of them.
    let server = start_server(
        &qnet,
        ServeConfig {
            workers: 1,
            max_batch: 16,
            max_wait: Duration::from_millis(50),
            ..ServeConfig::default()
        },
    );

    fault::arm_worker_panic(1);
    let tickets: Vec<_> = (0..4).map(|i| server.submit("m", image(30 + i)).unwrap()).collect();
    for ticket in tickets {
        match ticket.wait() {
            Err(ServeError::WorkerPanic) => {}
            other => panic!("expected WorkerPanic for every ticket, got {other:?}"),
        }
    }
    let snap = server.metrics();
    assert_eq!(snap.failed, 4, "no ticket in a panicked batch may be lost");
    assert_eq!(snap.models.iter().find(|m| m.name == "m").unwrap().in_flight, 0);
    server.shutdown();
}

#[test]
fn slow_batch_pushes_queued_requests_past_their_deadline() {
    let _guard = serial();
    let qnet = tiny_qnet(4);
    let server = start_server(
        &qnet,
        ServeConfig {
            workers: 1,
            max_batch: 4,
            max_wait: Duration::from_micros(100),
            ..ServeConfig::default()
        },
    );

    // The first dispatch stalls long; requests queued behind it with
    // short deadlines expire while it runs and must be shed at the next
    // batch formation, never computed.
    fault::arm_slow_batch(1, Duration::from_millis(300));
    let stalled = server.submit("m", image(40)).unwrap();
    // Wait until the stalling batch has actually been popped, so the
    // deadline requests land *behind* it rather than inside it.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !server.metrics().shard_depths.iter().all(|&d| d == 0) {
        assert!(std::time::Instant::now() < deadline, "stalled batch never popped");
        std::thread::sleep(Duration::from_micros(200));
    }
    // Depth hits zero the moment the stalling request leaves the queue,
    // but `pop_batch` lingers `max_wait` longer for stragglers — outwait
    // that window so the doomed requests land *behind* the batch, not in
    // it.
    std::thread::sleep(Duration::from_millis(10));
    let opts = mfdfp_serve::SubmitOptions {
        deadline: Some(Duration::from_millis(20)),
        ..Default::default()
    };
    let doomed: Vec<_> =
        (0..3).map(|i| server.submit_with("m", image(41 + i), opts).unwrap()).collect();

    // The stalled request itself had no deadline: it completes.
    assert!(stalled.wait().is_ok(), "the slow batch itself must still answer");
    for ticket in doomed {
        match ticket.wait() {
            Err(ServeError::DeadlineExceeded { model }) => assert_eq!(model, "m"),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
    let snap = server.metrics();
    assert_eq!(snap.submitted, 4);
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.shed, 3, "every expired request must be shed, not computed");
    assert_eq!(snap.failed, 0);
    assert_eq!(snap.models.iter().find(|m| m.name == "m").unwrap().in_flight, 0);
    server.shutdown();
}

#[test]
fn mid_swap_registry_reads_resolve_old_or_new_never_torn() {
    let _guard = serial();
    const SWAPS: u64 = 8;
    const REQUESTS: usize = 40;

    // Two generations with different weights; the swapper alternates
    // between them, so version v carries generation (v - 1) % 2.
    let generations = [tiny_qnet(5), tiny_qnet(6)];
    let img = image(50);
    let expected: Vec<Vec<u32>> =
        generations.iter().map(|g| bits(&g.logits(&img).unwrap())).collect();
    assert_ne!(expected[0], expected[1], "generations must disagree");

    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", generations[0].clone());
    let server = Arc::new(
        Server::start(Arc::clone(&registry), ServeConfig { workers: 2, ..ServeConfig::default() })
            .unwrap(),
    );

    // Every lookup dwells inside the registry's read lock, widening the
    // reader/swapper race window from nanoseconds to a millisecond.
    fault::arm_registry_read_delay(REQUESTS as u64, Duration::from_millis(1));
    let swapper = {
        let server = Arc::clone(&server);
        let generations = generations.clone();
        std::thread::spawn(move || {
            for installed in 1..=SWAPS {
                let next = &generations[(installed % 2) as usize];
                let version = server.swap_model("m", next.clone()).unwrap();
                assert_eq!(version, installed + 1, "swap lineage must be gapless");
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    for _ in 0..REQUESTS {
        let response = server.submit("m", img.clone()).unwrap().wait().unwrap();
        let claimed = &expected[((response.version - 1) % 2) as usize];
        assert_eq!(
            &bits(&response.logits),
            claimed,
            "a mid-swap read must resolve to a whole generation (version {})",
            response.version
        );
    }
    swapper.join().unwrap();

    let snap = server.metrics();
    assert_eq!(snap.completed, REQUESTS as u64);
    assert_eq!(snap.failed, 0);
    let m = snap.models.iter().find(|m| m.name == "m").unwrap();
    assert_eq!(m.version, SWAPS + 1);
    assert_eq!(m.swaps, SWAPS);
    fault::reset();
    Arc::try_unwrap(server).ok().expect("swapper joined").shutdown();
}
