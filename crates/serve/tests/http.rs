//! End-to-end tests of the HTTP/1.1 front-end over real loopback
//! sockets: bit-exact inference round-trips, typed error statuses,
//! deadline shedding as `504`, keep-alive, and the metrics/models
//! endpoints.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use mfdfp_core::{calibrate, QuantizedNet};
use mfdfp_nn::zoo;
use mfdfp_serve::http::{encode_request, format_f32_array, parse_f32_array};
use mfdfp_serve::{HttpConfig, HttpServer, ModelRegistry, ServeConfig, Server};
use mfdfp_tensor::{Tensor, TensorRng};

/// A small calibrated MF-DFP network (3×16×16 input, 10 classes).
fn tiny_qnet(seed: u64) -> QuantizedNet {
    let mut rng = TensorRng::seed_from(seed);
    let mut net = zoo::quick_custom(3, 16, [2, 2, 4], 8, 10, &mut rng).unwrap();
    let x = rng.gaussian([4, 3, 16, 16], 0.0, 0.7);
    let plan = calibrate(&mut net, &[(x, vec![0, 1, 2, 3])], 8).unwrap();
    QuantizedNet::from_network(&net, &plan).unwrap()
}

/// Starts a one-model server + HTTP front-end on an ephemeral port.
fn start_http(qnet: &QuantizedNet, config: ServeConfig) -> (HttpServer, Arc<Server>) {
    let registry = Arc::new(ModelRegistry::new());
    registry.register("tiny", qnet.clone());
    let server = Arc::new(Server::start(registry, config).unwrap());
    let http = HttpServer::bind(Arc::clone(&server), "127.0.0.1:0", HttpConfig::default()).unwrap();
    (http, server)
}

/// Writes raw bytes, reads exactly one HTTP response: `(status, body)`.
fn roundtrip(stream: &mut TcpStream, bytes: &[u8]) -> (u16, String) {
    stream.write_all(bytes).unwrap();
    read_response(stream)
}

fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4) {
            let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
            let status: u16 = head.split(' ').nth(1).unwrap().parse().unwrap();
            let length: usize = head
                .to_ascii_lowercase()
                .lines()
                .find_map(|l| l.strip_prefix("content-length:").map(|v| v.trim().to_string()))
                .unwrap()
                .parse()
                .unwrap();
            while buf.len() < head_end + length {
                let n = stream.read(&mut chunk).unwrap();
                assert!(n > 0, "server closed mid-body");
                buf.extend_from_slice(&chunk[..n]);
            }
            let body = String::from_utf8_lossy(&buf[head_end..head_end + length]).into_owned();
            return (status, body);
        }
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "server closed mid-head");
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Tears the tier down: stops the acceptor, waits for connection handler
/// threads to release their `Arc<Server>` clones (they exit on EOF once
/// the client streams are dropped), then shuts the server down.
fn finish(http: HttpServer, mut server: Arc<Server>) {
    http.shutdown();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match Arc::try_unwrap(server) {
            Ok(owned) => {
                owned.shutdown();
                return;
            }
            Err(shared) => {
                server = shared;
                assert!(std::time::Instant::now() < deadline, "handler threads did not exit");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn extract_logits(body: &str) -> Vec<f32> {
    let start = body.find("\"logits\":").unwrap() + "\"logits\":".len();
    let end = body[start..].find(']').unwrap() + start + 1;
    parse_f32_array(&body.as_bytes()[start..end]).unwrap()
}

#[test]
fn infer_round_trip_is_bit_exact_and_keep_alive_works() {
    let qnet = tiny_qnet(11);
    let (http, server) = start_http(&qnet, ServeConfig::default());
    let mut stream = TcpStream::connect(http.local_addr()).unwrap();
    let mut rng = TensorRng::seed_from(3);

    // Several requests on ONE connection: keep-alive must hold, and
    // every decoded response must be bit-identical to direct inference.
    for i in 0..4 {
        let img = rng.gaussian([3, 16, 16], 0.0, 0.7);
        let body = format_f32_array(img.as_slice());
        let bytes = encode_request("POST", "/v1/infer/tiny", &[], body.as_bytes());
        let (status, response) = roundtrip(&mut stream, &bytes);
        assert_eq!(status, 200, "request {i}: {response}");
        assert!(response.contains("\"model\":\"tiny\""));
        assert!(response.contains("\"version\":1"));
        let direct = qnet.logits(&img).unwrap();
        let served = extract_logits(&response);
        assert_eq!(direct.as_slice().len(), served.len());
        for (a, b) in direct.as_slice().iter().zip(&served) {
            assert_eq!(a.to_bits(), b.to_bits(), "served logits not bit-exact");
        }
    }
    drop(stream);
    finish(http, server);
}

#[test]
fn error_paths_map_to_typed_statuses() {
    let qnet = tiny_qnet(13);
    let (http, server) = start_http(&qnet, ServeConfig::default());
    let addr = http.local_addr();
    let connect = || TcpStream::connect(addr).unwrap();

    // Unknown model → 404.
    let body = format_f32_array(&vec![0.1f32; 768]);
    let (status, response) =
        roundtrip(&mut connect(), &encode_request("POST", "/v1/infer/ghost", &[], body.as_bytes()));
    assert_eq!(status, 404, "{response}");
    assert!(response.contains("\"error\""));

    // Wrong input size → 400 with the model's expectation in the message.
    let (status, response) =
        roundtrip(&mut connect(), &encode_request("POST", "/v1/infer/tiny", &[], b"[1.0,2.0]"));
    assert_eq!(status, 400, "{response}");
    assert!(response.contains("768"), "{response}");

    // Poison body → 400, typed.
    let (status, response) =
        roundtrip(&mut connect(), &encode_request("POST", "/v1/infer/tiny", &[], b"[1.0,NaN,2.0]"));
    assert_eq!(status, 400, "{response}");

    // Unknown route → 404; wrong method → 405.
    let (status, _) = roundtrip(&mut connect(), &encode_request("GET", "/nope", &[], b""));
    assert_eq!(status, 404);
    let (status, _) = roundtrip(&mut connect(), &encode_request("GET", "/v1/infer/tiny", &[], b""));
    assert_eq!(status, 405);
    let (status, _) = roundtrip(&mut connect(), &encode_request("POST", "/v1/metrics", &[], b"x"));
    assert_eq!(status, 405);

    // Bad deadline / priority headers → 400.
    let (status, _) = roundtrip(
        &mut connect(),
        &encode_request("POST", "/v1/infer/tiny", &[("x-mfdfp-deadline-us", "soon")], b"[]"),
    );
    assert_eq!(status, 400);
    let (status, _) = roundtrip(
        &mut connect(),
        &encode_request("POST", "/v1/infer/tiny", &[("x-mfdfp-priority", "vip")], b"[]"),
    );
    assert_eq!(status, 400);

    // Oversized declared body → 413 from the declaration alone.
    let (status, _) = roundtrip(
        &mut connect(),
        b"POST /v1/infer/tiny HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n",
    );
    assert_eq!(status, 413);

    // Malformed request line → 400.
    let (status, _) = roundtrip(&mut connect(), b"garbage\r\n\r\n");
    assert_eq!(status, 400);

    // Unsupported version → 505.
    let (status, _) = roundtrip(&mut connect(), b"GET /v1/models HTTP/3.0\r\n\r\n");
    assert_eq!(status, 505);

    finish(http, server);
}

#[test]
fn expired_deadline_sheds_as_504_and_counts() {
    let qnet = tiny_qnet(17);
    let (http, server) = start_http(&qnet, ServeConfig::default());
    let mut stream = TcpStream::connect(http.local_addr()).unwrap();
    let mut rng = TensorRng::seed_from(5);
    let img: Tensor = rng.gaussian([3, 16, 16], 0.0, 0.7);
    let body = format_f32_array(img.as_slice());

    // A zero deadline has always expired by batch formation: the request
    // must shed deterministically — typed 504, counted, no inference.
    let bytes =
        encode_request("POST", "/v1/infer/tiny", &[("x-mfdfp-deadline-us", "0")], body.as_bytes());
    let (status, response) = roundtrip(&mut stream, &bytes);
    assert_eq!(status, 504, "{response}");
    assert!(response.contains("shed"), "{response}");

    // A generous deadline serves normally on the same connection.
    let bytes = encode_request(
        "POST",
        "/v1/infer/tiny",
        &[("x-mfdfp-deadline-us", "60000000")],
        body.as_bytes(),
    );
    let (status, _) = roundtrip(&mut stream, &bytes);
    assert_eq!(status, 200);

    let snap = server.metrics();
    assert_eq!(snap.shed, 1);
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.submitted, 2);
    drop(stream);
    finish(http, server);
}

#[test]
fn metrics_and_models_endpoints_serve_json() {
    let qnet = tiny_qnet(19);
    let (http, server) = start_http(&qnet, ServeConfig::default());
    server.registry().register("second", tiny_qnet(23));
    server.swap_model("second", tiny_qnet(29)).unwrap();
    let mut stream = TcpStream::connect(http.local_addr()).unwrap();

    let (status, body) = roundtrip(&mut stream, &encode_request("GET", "/v1/models", &[], b""));
    assert_eq!(status, 200);
    assert!(body.contains("{\"name\":\"tiny\",\"version\":1}"), "{body}");
    assert!(body.contains("{\"name\":\"second\",\"version\":2}"), "{body}");

    // Serve one request, then the metrics document must reflect it.
    let mut rng = TensorRng::seed_from(7);
    let img: Tensor = rng.gaussian([3, 16, 16], 0.0, 0.7);
    let body = format_f32_array(img.as_slice());
    let (status, _) =
        roundtrip(&mut stream, &encode_request("POST", "/v1/infer/tiny", &[], body.as_bytes()));
    assert_eq!(status, 200);

    let (status, body) = roundtrip(&mut stream, &encode_request("GET", "/v1/metrics", &[], b""));
    assert_eq!(status, 200);
    assert!(body.contains("\"completed\":1"), "{body}");
    assert!(body.contains("\"shard_depths\":["), "{body}");
    assert!(body.contains("\"shed\":0"), "{body}");
    drop(stream);
    finish(http, server);
}

#[test]
fn http_shutdown_stops_accepting_but_server_survives() {
    let qnet = tiny_qnet(31);
    let (http, server) = start_http(&qnet, ServeConfig::default());
    let addr = http.local_addr();
    http.shutdown();
    // New connections are refused or die without a response…
    let refused = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut stream) => {
            let bytes = encode_request("GET", "/v1/models", &[], b"");
            stream.write_all(&bytes).is_err() || {
                let mut out = Vec::new();
                stream.read_to_end(&mut out).map(|n| n == 0).unwrap_or(true)
            }
        }
    };
    assert!(refused, "acceptor must be gone after shutdown");
    // …but the in-process server still serves.
    let mut rng = TensorRng::seed_from(9);
    let img: Tensor = rng.gaussian([3, 16, 16], 0.0, 0.7);
    let response = server.submit("tiny", img).unwrap().wait().unwrap();
    assert_eq!(response.model, "tiny");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut server = server;
    loop {
        match Arc::try_unwrap(server) {
            Ok(owned) => {
                owned.shutdown();
                break;
            }
            Err(shared) => {
                server = shared;
                assert!(std::time::Instant::now() < deadline, "handler threads did not exit");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Like [`start_http`] but with a custom [`HttpConfig`].
fn start_http_with(qnet: &QuantizedNet, http_config: HttpConfig) -> (HttpServer, Arc<Server>) {
    let registry = Arc::new(ModelRegistry::new());
    registry.register("tiny", qnet.clone());
    let server = Arc::new(Server::start(registry, ServeConfig::default()).unwrap());
    let http = HttpServer::bind(Arc::clone(&server), "127.0.0.1:0", http_config).unwrap();
    (http, server)
}

#[test]
fn idle_keep_alive_connection_is_answered_408_and_reaped() {
    let qnet = tiny_qnet(17);
    let (http, server) = start_http_with(
        &qnet,
        HttpConfig {
            idle_timeout: Duration::from_millis(200),
            read_timeout: Duration::from_millis(50),
            ..Default::default()
        },
    );
    let mut stream = TcpStream::connect(http.local_addr()).unwrap();

    // A completed request resets the idle clock: the connection is
    // healthy keep-alive first.
    let img = TensorRng::seed_from(5).gaussian([3, 16, 16], 0.0, 0.7);
    let body = format_f32_array(img.as_slice());
    let bytes = encode_request("POST", "/v1/infer/tiny", &[], body.as_bytes());
    let (status, _) = roundtrip(&mut stream, &bytes);
    assert_eq!(status, 200);

    // Then silence: at the deadline the server answers 408 and closes,
    // releasing the connection slot instead of leaking it forever.
    let idle_started = std::time::Instant::now();
    let (status, response) = read_response(&mut stream);
    assert_eq!(status, 408, "an idle connection must be answered 408: {response}");
    assert!(response.contains("idle"), "the 408 body must say why: {response}");
    assert!(
        idle_started.elapsed() >= Duration::from_millis(150),
        "the reap must honour the configured idle window"
    );
    // The connection is closed after the 408 (EOF, not more data).
    let mut tail = [0u8; 16];
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    assert!(matches!(stream.read(&mut tail), Ok(0) | Err(_)), "connection must be closed");

    assert_eq!(server.metrics().http_idle_closed, 1, "the reap must be counted");
    drop(stream);
    finish(http, server);
}

#[test]
fn slow_loris_partial_head_is_held_to_the_same_deadline() {
    let qnet = tiny_qnet(18);
    let (http, server) = start_http_with(
        &qnet,
        HttpConfig {
            idle_timeout: Duration::from_millis(200),
            read_timeout: Duration::from_millis(20),
            ..Default::default()
        },
    );
    let mut stream = TcpStream::connect(http.local_addr()).unwrap();

    // Drip a partial request head, never completing it. Each drip lands
    // well inside the read timeout, but only a *complete* request resets
    // the idle deadline — so the drip-feed is reaped exactly like a
    // silent peer would be.
    let started = std::time::Instant::now();
    stream.write_all(b"POST /v1/infer/tiny HTT").unwrap();
    std::thread::sleep(Duration::from_millis(60));
    stream.write_all(b"P/1.1\r\nContent-").unwrap();
    std::thread::sleep(Duration::from_millis(60));
    let _ = stream.write_all(b"Length: 10\r\n");

    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 408, "a slow-loris drip must be reaped, not served forever");
    assert!(started.elapsed() >= Duration::from_millis(150));
    assert_eq!(server.metrics().http_idle_closed, 1);
    drop(stream);
    finish(http, server);
}

#[test]
fn health_and_ready_endpoints_serve_the_healing_surface() {
    let qnet = tiny_qnet(19);
    let (http, server) = start_http(&qnet, ServeConfig::default());
    let mut stream = TcpStream::connect(http.local_addr()).unwrap();

    // One served request first: a model's breaker is created lazily on
    // its first admission, and health must then surface it.
    let img = TensorRng::seed_from(6).gaussian([3, 16, 16], 0.0, 0.7);
    let infer =
        encode_request("POST", "/v1/infer/tiny", &[], format_f32_array(img.as_slice()).as_bytes());
    let (status, _) = roundtrip(&mut stream, &infer);
    assert_eq!(status, 200);

    let (status, body) = roundtrip(&mut stream, &encode_request("GET", "/v1/health", &[], b""));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ready\":true"), "{body}");
    assert!(body.contains("\"shards\":["), "{body}");
    assert!(body.contains("\"breakers\":{"), "{body}");
    assert!(body.contains("\"degrade_level\":0"), "{body}");
    assert!(body.contains("\"respawns\":0"), "{body}");
    assert!(body.contains("\"heartbeat_ages_ms\":["), "{body}");
    // The default config breaks per model: the registered model's
    // breaker must be surfaced closed.
    assert!(body.contains("\"tiny\":{\"state\":\"closed\""), "{body}");

    let (status, body) = roundtrip(&mut stream, &encode_request("GET", "/v1/ready", &[], b""));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, "{\"ready\":true}");

    // Wrong method: same 405 contract as the other GET endpoints.
    let (status, _) = roundtrip(&mut stream, &encode_request("POST", "/v1/health", &[], b"{}"));
    assert_eq!(status, 405);

    drop(stream);
    finish(http, server);
}
