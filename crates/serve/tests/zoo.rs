//! End-to-end zoo serving: build several calibrated networks, pack them
//! into one v2 zoo image, round-trip it through a file (as deployment
//! would), map it back with [`ModelRegistry::load_zoo_bytes`], and check
//! the served logits are **byte-identical** to the direct owned-weight
//! networks — proving the zero-copy image path changes nothing numerically.

use std::sync::Arc;

use mfdfp_core::{calibrate, QuantizedNet, ZooBuilder, ZooView};
use mfdfp_nn::zoo;
use mfdfp_serve::{ModelRegistry, ServeConfig, Server};
use mfdfp_tensor::{Tensor, TensorRng};

/// A small calibrated MF-DFP network (3×16×16 input, 10 classes).
fn tiny_qnet(seed: u64) -> QuantizedNet {
    let mut rng = TensorRng::seed_from(seed);
    let mut net = zoo::quick_custom(3, 16, [4, 4, 8], 16, 10, &mut rng).unwrap();
    let x = rng.gaussian([4, 3, 16, 16], 0.0, 0.7);
    let plan = calibrate(&mut net, &[(x, vec![0, 1, 2, 3])], 8).unwrap();
    QuantizedNet::from_network(&net, &plan).unwrap()
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn zoo_file_round_trip_serves_byte_identical_logits() {
    let nets: Vec<(String, QuantizedNet)> =
        (0..3u64).map(|i| (format!("model-{i}"), tiny_qnet(100 + i))).collect();

    // Serialise the zoo and round-trip it through a real file.
    let mut builder = ZooBuilder::new();
    for (name, net) in &nets {
        builder.push(name, net);
    }
    let image = builder.finish();
    let dir = std::env::temp_dir().join(format!("mfdfp-zoo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("zoo.mfdfp");
    std::fs::write(&path, image.as_slice()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    assert_eq!(bytes, image.as_slice(), "zoo image must survive the file system untouched");

    // Map it into a registry and serve each model.
    let registry = Arc::new(ModelRegistry::new());
    let names = registry.load_zoo_bytes(&bytes).unwrap();
    assert_eq!(names, vec!["model-0", "model-1", "model-2"]);
    assert_eq!(registry.len(), 3);

    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig { workers: 2, queue_capacity: 32, ..Default::default() },
    )
    .unwrap();

    let mut rng = TensorRng::seed_from(7);
    for (name, net) in &nets {
        for _ in 0..4 {
            let img = rng.gaussian([3, 16, 16], 0.0, 0.7);
            let response = server.submit(name, img.clone()).unwrap().wait().unwrap();
            let direct = net.logits(&img).unwrap();
            assert_eq!(
                bits(&response.logits),
                bits(&direct),
                "zoo-served logits differ from owned-weight network {name}"
            );
            assert_eq!(response.class, direct.argmax());
        }
    }
    server.shutdown();
}

#[test]
fn zoo_view_lists_and_finds_models() {
    let mut builder = ZooBuilder::new();
    builder.push("a", &tiny_qnet(1)).push("b", &tiny_qnet(2));
    let zoo = ZooView::open(Arc::new(builder.finish())).unwrap();
    assert_eq!(zoo.len(), 2);
    assert_eq!(zoo.names(), vec!["a", "b"]);
    assert!(zoo.find("b").is_ok());
    assert!(zoo.find("c").is_err());
    let net = QuantizedNet::from_image(&zoo.model(0).unwrap()).unwrap();
    assert_eq!(net.classes(), 10);
}

#[test]
fn corrupt_zoo_registers_nothing() {
    let mut builder = ZooBuilder::new();
    builder.push("only", &tiny_qnet(5));
    let image = builder.finish();
    let mut bytes = image.as_slice().to_vec();
    let last = bytes.len() - 1;
    bytes.truncate(last); // header length no longer matches
    let registry = ModelRegistry::new();
    assert!(registry.load_zoo_bytes(&bytes).is_err());
    assert!(registry.is_empty());
}
