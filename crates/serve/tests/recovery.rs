//! Chaos-recovery harness: the self-healing loop driven end-to-end by
//! the deterministic fault hooks — panic storms trip and heal the
//! per-model circuit breaker, hung and dead workers are respawned by
//! the watchdog mid-traffic, overload trims ensemble members (each
//! degraded answer **bit-identical** to the truncated-ensemble oracle),
//! and a bounded-drain shutdown answers leftovers with a typed error
//! while the accounting identity
//! `completed + failed + shed + shutdown_rejected == submitted` stays
//! exact through all of it.
//!
//! Runs only with `--features fault`; CI drives it on both the serial
//! and `parallel` schedulers. Fault counters are process-global, so
//! every test serialises on one mutex and re-arms from a clean slate.

#![cfg(feature = "fault")]

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use mfdfp_core::{calibrate, Ensemble, QuantizedNet};
use mfdfp_nn::zoo;
use mfdfp_serve::{
    fault, BreakerConfig, BreakerState, DegradeConfig, MetricsSnapshot, ModelRegistry, ServeConfig,
    ServeError, Server,
};
use mfdfp_tensor::{Tensor, TensorRng};

/// Serialises tests (the armed-fault counters are process-global) and
/// disarms any fault a previous test left behind.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    let guard = GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    fault::reset();
    guard
}

/// A small calibrated MF-DFP network (3×16×16 input, 10 classes).
fn tiny_qnet(seed: u64) -> QuantizedNet {
    let mut rng = TensorRng::seed_from(seed);
    let mut net = zoo::quick_custom(3, 16, [2, 2, 4], 8, 10, &mut rng).unwrap();
    let x = rng.gaussian([4, 3, 16, 16], 0.0, 0.7);
    let plan = calibrate(&mut net, &[(x, vec![0, 1, 2, 3])], 8).unwrap();
    QuantizedNet::from_network(&net, &plan).unwrap()
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn image(seed: u64) -> Tensor {
    TensorRng::seed_from(seed).gaussian([3, 16, 16], 0.0, 0.7)
}

/// `completed + failed + shed + shutdown_rejected == submitted` — the
/// identity every test ends on.
fn assert_balanced(snap: &MetricsSnapshot) {
    assert_eq!(
        snap.submitted,
        snap.completed + snap.failed + snap.shed + snap.shutdown_rejected,
        "accounting identity must balance exactly"
    );
}

/// Breaker state of `model` as the health surface reports it.
fn breaker_state(server: &Server, model: &str) -> BreakerState {
    server
        .health()
        .breakers
        .iter()
        .find(|(name, _)| name == model)
        .map(|(_, snap)| snap.state)
        .unwrap_or_else(|| panic!("no breaker surfaced for {model}"))
}

#[test]
fn panic_storm_trips_the_breaker_and_probes_heal_it() {
    let _guard = serial();
    let qnet = tiny_qnet(1);
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", qnet.clone());
    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 1,
            breaker: Some(BreakerConfig {
                threshold: 3,
                backoff: Duration::from_millis(50),
                backoff_max: Duration::from_millis(500),
                probes: 1,
            }),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // Healthy baseline.
    for seed in 0..2 {
        let img = image(seed);
        let response = server.submit("m", img.clone()).unwrap().wait().unwrap();
        assert_eq!(bits(&response.logits), bits(&qnet.logits(&img).unwrap()));
    }
    assert!(matches!(breaker_state(&server, "m"), BreakerState::Closed));

    // Storm: every dispatch panics. Sequential submits make the count
    // deterministic — exactly `threshold` failures reach a worker, then
    // the circuit opens and the next admission fast-fails.
    fault::arm_worker_panic(1_000);
    for i in 0..3 {
        match server.submit("m", image(10 + i)).unwrap().wait() {
            Err(ServeError::WorkerPanic) => {}
            other => panic!("storm dispatch {i} must panic, got {other:?}"),
        }
    }
    match server.submit("m", image(20)) {
        Err(ServeError::CircuitOpen { model, retry_after }) => {
            assert_eq!(model, "m");
            assert!(retry_after <= Duration::from_millis(50), "retry_after must fit the backoff");
        }
        other => panic!("expected CircuitOpen after {} failures, got {other:?}", 3),
    }
    assert!(matches!(breaker_state(&server, "m"), BreakerState::Open));

    // While open: no storm panic is consumed — admissions never reach a
    // worker — and every rejection is counted.
    for i in 0..5 {
        assert!(
            matches!(server.submit("m", image(30 + i)), Err(ServeError::CircuitOpen { .. })),
            "open circuit must fast-fail admission {i}"
        );
    }

    // Half-open probe that *fails*: the circuit re-opens with the
    // backoff doubled.
    std::thread::sleep(Duration::from_millis(70));
    match server.submit("m", image(40)).unwrap().wait() {
        Err(ServeError::WorkerPanic) => {}
        other => panic!("the failing probe must reach a worker and panic, got {other:?}"),
    }
    match server.submit("m", image(41)) {
        Err(ServeError::CircuitOpen { retry_after, .. }) => {
            assert!(
                retry_after > Duration::from_millis(50),
                "a failed probe must double the backoff, got {retry_after:?}"
            );
        }
        other => panic!("expected CircuitOpen after the failed probe, got {other:?}"),
    }

    // Disarm and heal: once the doubled backoff lapses, the next probe
    // succeeds and fully closes the circuit.
    fault::reset();
    let heal_start = Instant::now();
    let img = image(50);
    let response = loop {
        match server.submit("m", img.clone()) {
            Ok(ticket) => break ticket.wait().expect("the healthy probe must serve"),
            Err(ServeError::CircuitOpen { .. }) => std::thread::sleep(Duration::from_millis(5)),
            Err(e) => panic!("heal submit: {e}"),
        }
        assert!(heal_start.elapsed() < Duration::from_secs(10), "circuit never closed");
    };
    assert_eq!(bits(&response.logits), bits(&qnet.logits(&img).unwrap()));
    assert!(matches!(breaker_state(&server, "m"), BreakerState::Closed));

    // Closed means fully closed: follow-up traffic flows freely.
    for seed in 60..63 {
        let img = image(seed);
        let response = server.submit("m", img.clone()).unwrap().wait().unwrap();
        assert_eq!(bits(&response.logits), bits(&qnet.logits(&img).unwrap()));
    }

    let snap = server.metrics();
    assert_eq!(snap.failed, 4, "3 storm failures + 1 failed probe");
    assert_eq!(snap.breaker_opens, 2, "initial trip + the failed probe's re-open");
    assert!(snap.breaker_rejected >= 6, "every fast-fail must be counted");
    assert_balanced(&snap);
    let m = snap.models.iter().find(|m| m.name == "m").unwrap();
    assert_eq!(m.in_flight, 0, "breaker rejections must never leak quota slots");
    server.shutdown();
}

#[test]
fn hung_and_dead_workers_are_respawned_mid_traffic() {
    let _guard = serial();
    let qnet = tiny_qnet(2);
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", qnet.clone());
    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 1,
            supervise_interval: Duration::from_millis(10),
            hang_timeout: Duration::from_millis(80),
            breaker: None,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    assert!(server.ready(), "a fresh tier must be ready");

    // Hang the only worker mid-dispatch for well past the hang timeout.
    fault::arm_worker_hang(1, Duration::from_millis(400));
    let hung = server.submit("m", image(70)).unwrap();
    // Let the worker pop the hanging batch before queueing traffic
    // behind it.
    std::thread::sleep(Duration::from_millis(20));
    let queued: Vec<_> = (0..4).map(|i| server.submit("m", image(71 + i)).unwrap()).collect();

    // The watchdog must declare the worker hung and respawn a
    // replacement while the original still sleeps.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.metrics().respawns < 1 {
        assert!(Instant::now() < deadline, "watchdog never respawned the hung worker");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Crash-only: the hung dispatch still answers its ticket when the
    // sleep ends, and the queued traffic is served (by the replacement,
    // or by the detached original once it wakes) — nothing is lost.
    let response = hung.wait().expect("the hung batch must still answer");
    assert_eq!(bits(&response.logits), bits(&qnet.logits(&image(70)).unwrap()));
    for (i, ticket) in queued.into_iter().enumerate() {
        let img = image(71 + i as u64);
        let response = ticket.wait().expect("queued traffic must survive the respawn");
        assert_eq!(bits(&response.logits), bits(&qnet.logits(&img).unwrap()));
    }

    // Kill a worker outright (outside the dispatch containment): the
    // watchdog detects the dead thread and respawns again. Idle workers
    // still tick their loop, so no traffic is needed to trigger it. Two
    // threads drain this queue now — the replacement in the slot and
    // the detached zombie (crash-only: nobody joined it) — and either
    // may consume an armed death, so arm one per thread; a dying thread
    // can never consume more than one, so the slot worker is guaranteed
    // to die and trip the watchdog.
    let before = server.metrics().respawns;
    fault::arm_worker_die(2);
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.metrics().respawns <= before {
        assert!(Instant::now() < deadline, "watchdog never respawned the dead worker");
        std::thread::sleep(Duration::from_millis(2));
    }

    // The tier is whole again: serving, ready, heartbeats fresh.
    let img = image(90);
    let response = server.submit("m", img.clone()).unwrap().wait().unwrap();
    assert_eq!(bits(&response.logits), bits(&qnet.logits(&img).unwrap()));
    let health = server.health();
    assert!(health.ready, "tier must be ready after healing: {}", health.to_json());
    assert_eq!(health.shards.len(), 1);
    assert!(health.respawns >= 2, "both respawns must be surfaced");

    let snap = server.metrics();
    assert_eq!(snap.completed, 6);
    assert_eq!(snap.failed, 0, "hangs and deaths must not fail any request");
    assert_balanced(&snap);
    server.shutdown();
}

#[test]
fn degraded_answers_are_bit_identical_to_the_truncated_ensemble_oracle() {
    let _guard = serial();
    const MEMBERS: usize = 3;
    let members: Vec<QuantizedNet> = (0..MEMBERS as u64).map(|i| tiny_qnet(900 + i)).collect();
    let ensemble = Ensemble::new(members.clone()).unwrap();
    let registry = Arc::new(ModelRegistry::new());
    registry.register("ens", ensemble.clone());
    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::from_micros(100),
            supervise_interval: Duration::from_millis(5),
            hang_timeout: Duration::from_secs(1),
            breaker: None,
            // A 1 ms queue-wait target with an effectively-infinite
            // release, so the level engages under the injected stall and
            // then holds still for the oracle comparison.
            degrade: Some(DegradeConfig {
                target_p95: Duration::from_millis(1),
                release_ticks: 10_000,
            }),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let oracle = |img: &Tensor, k: usize| -> Vec<u32> {
        let truncated = Ensemble::new(members[..k].to_vec()).unwrap();
        let batch = img.reshape([1, 3, 16, 16]).unwrap();
        bits(&truncated.logits_batch(&batch).unwrap())
    };

    // Calm tier: full ensemble, not degraded.
    let img = image(100);
    let response = server.submit("ens", img.clone()).unwrap().wait().unwrap();
    assert!(!response.degraded, "an unloaded tier must serve the full ensemble");
    assert_eq!(bits(&response.logits), oracle(&img, MEMBERS));

    // Overload: one stalled dispatch piles queue wait far past the
    // target onto everything behind it.
    fault::arm_slow_batch(1, Duration::from_millis(80));
    let tickets: Vec<_> = (0..6).map(|i| server.submit("ens", image(101 + i)).unwrap()).collect();
    for ticket in tickets {
        ticket.wait().expect("overloaded traffic still serves");
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.metrics().degrade_level == 0 {
        assert!(Instant::now() < deadline, "overload never engaged the degrade level");
        std::thread::sleep(Duration::from_millis(2));
    }
    // Let the controller consume every overload sample so the level
    // holds still through the comparison below.
    std::thread::sleep(Duration::from_millis(100));

    let level = server.metrics().degrade_level;
    let served_members = MEMBERS - (level as usize).min(MEMBERS - 1);
    assert!(served_members < MEMBERS, "an engaged level must trim at least one member");

    // The degraded answer must be bit-identical to a standalone
    // ensemble of the served prefix — a smaller ensemble, not an
    // approximation (the paper's Table 3 accuracy/cost dial).
    let img = image(200);
    let response = server.submit("ens", img.clone()).unwrap().wait().unwrap();
    assert!(response.degraded, "a trimmed answer must be flagged degraded");
    assert_eq!(
        bits(&response.logits),
        oracle(&img, served_members),
        "degraded answer diverged from the truncated-ensemble oracle (level {level})"
    );
    assert_eq!(
        server.metrics().degrade_level,
        level,
        "the level must not move mid-comparison (hysteresis held by release_ticks)"
    );

    let snap = server.metrics();
    assert!(snap.degraded >= 1, "degraded answers must be counted");
    assert_eq!(snap.failed, 0);
    assert_balanced(&snap);
    server.shutdown();
}

#[test]
fn bounded_drain_answers_leftovers_typed_and_balances() {
    let _guard = serial();
    let qnet = tiny_qnet(4);
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", qnet.clone());
    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::from_micros(100),
            breaker: None,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // One dispatch stalls far past the drain budget; traffic queued
    // behind it cannot possibly dispatch before the deadline.
    fault::arm_slow_batch(1, Duration::from_millis(300));
    let stalled = server.submit("m", image(300)).unwrap();
    std::thread::sleep(Duration::from_millis(20)); // let the worker pop it
    let leftovers: Vec<_> = (0..6).map(|i| server.submit("m", image(301 + i)).unwrap()).collect();

    // The drain bound applies to queue wait, not compute: the in-flight
    // batch finishes, the six queued requests are answered typed.
    let snap = server.shutdown_within(Duration::from_millis(50));

    let response = stalled.wait().expect("the in-flight batch must finish");
    assert_eq!(bits(&response.logits), bits(&qnet.logits(&image(300)).unwrap()));
    for (i, ticket) in leftovers.into_iter().enumerate() {
        match ticket.wait() {
            Err(ServeError::ShuttingDown) => {}
            other => panic!("leftover {i} must be answered ShuttingDown, got {other:?}"),
        }
    }

    assert_eq!(snap.submitted, 7);
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.shutdown_rejected, 6, "every drained leftover must be counted");
    assert_eq!(snap.shed, 0);
    assert_eq!(snap.failed, 0);
    assert_balanced(&snap);
    let m = snap.models.iter().find(|m| m.name == "m").unwrap();
    assert_eq!(m.in_flight, 0, "drained requests must release their quota slots");
}
