//! Chaos/concurrency harness: producers hammer `submit` while a swapper
//! hot-swaps the model out from under them every few batches.
//!
//! The invariant under test is the Arc-flip contract: **every** response
//! is bit-identical to one of the registered generations' direct logits
//! — old weights or new weights, never a torn mix, never a third value —
//! and the reported [`Response::version`] names exactly which. The same
//! binary runs under both schedulers (CI runs it serially and with
//! `MFDFP_THREADS=4` + the `parallel` feature), since the batcher's
//! grouping, not any scheduler property, is what forbids torn batches.
//!
//! [`Response::version`]: mfdfp_serve::Response

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mfdfp_core::{calibrate, QuantizedNet};
use mfdfp_nn::zoo;
use mfdfp_serve::{ModelRegistry, Priority, ServeConfig, ServeError, Server, SubmitOptions};
use mfdfp_tensor::{Tensor, TensorRng};

/// A small calibrated MF-DFP network (3×16×16 input, 10 classes). Seeds
/// produce *different* weights, so generations answer differently.
fn tiny_qnet(seed: u64) -> QuantizedNet {
    let mut rng = TensorRng::seed_from(seed);
    let mut net = zoo::quick_custom(3, 16, [2, 2, 4], 8, 10, &mut rng).unwrap();
    let x = rng.gaussian([4, 3, 16, 16], 0.0, 0.7);
    let plan = calibrate(&mut net, &[(x, vec![0, 1, 2, 3])], 8).unwrap();
    QuantizedNet::from_network(&net, &plan).unwrap()
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn hot_swap_under_concurrent_traffic_never_tears_a_response() {
    const PRODUCERS: usize = 4;
    const REQUESTS: usize = 60;
    const GENERATIONS: u64 = 6;

    // Pre-build every generation the swapper will install, and the
    // direct logits each generation produces for every image, so the
    // per-response check is a pure table lookup.
    let generations: Vec<QuantizedNet> = (0..GENERATIONS).map(|g| tiny_qnet(100 + g)).collect();
    let mut rng = TensorRng::seed_from(424_242);
    let images: Vec<Tensor> = (0..REQUESTS).map(|_| rng.gaussian([3, 16, 16], 0.0, 0.7)).collect();
    let expected: Vec<Vec<Vec<u32>>> = generations
        .iter()
        .map(|g| images.iter().map(|img| bits(&g.logits(img).unwrap())).collect())
        .collect();
    // Distinct generations must actually answer differently, or the
    // "matches exactly one generation" check below proves nothing.
    assert_ne!(expected[0][0], expected[1][0], "generations must disagree");

    let registry = Arc::new(ModelRegistry::new());
    registry.register("hot", generations[0].clone());
    let server = Arc::new(
        Server::start(
            Arc::clone(&registry),
            ServeConfig {
                shards: 2,
                workers: 1,
                queue_capacity: 256,
                max_batch: 8,
                max_wait: Duration::from_micros(500),
                model_quota: None,
                ..ServeConfig::default()
            },
        )
        .unwrap(),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let swapper = {
        let server = Arc::clone(&server);
        let generations = generations.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut installed = 1u64; // registered generation 0 at version 1
            while !stop.load(Ordering::Relaxed) {
                let next = &generations[(installed % GENERATIONS) as usize];
                let version = server.swap_model("hot", next.clone()).unwrap();
                installed += 1;
                assert_eq!(version, installed, "versions must be a gapless lineage");
                // A few batches' worth of traffic between swaps.
                std::thread::sleep(Duration::from_millis(2));
            }
            installed
        })
    };

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let server = Arc::clone(&server);
            let images = images.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                for (i, img) in images.iter().enumerate() {
                    // Mix the priority lane into the chaos: it must obey
                    // the same consistency contract.
                    let opts = SubmitOptions {
                        priority: if (p + i) % 5 == 0 { Priority::High } else { Priority::Normal },
                        ..Default::default()
                    };
                    let ticket = loop {
                        match server.submit_with("hot", img.clone(), opts) {
                            Ok(t) => break t,
                            Err(ServeError::QueueFull { .. }) => {
                                std::thread::sleep(Duration::from_micros(100));
                            }
                            Err(e) => panic!("submit: {e}"),
                        }
                    };
                    let response = ticket.wait().unwrap();
                    let got = bits(&response.logits);
                    // The version the response claims must reproduce the
                    // logits exactly: version v served generation
                    // (v-1) % GENERATIONS.
                    let claimed = &expected[((response.version - 1) % GENERATIONS) as usize][i];
                    assert_eq!(
                        &got, claimed,
                        "producer {p} request {i}: response does not match the weights of the \
                         version ({}) it claims — torn or stale read",
                        response.version
                    );
                }
            })
        })
        .collect();

    for producer in producers {
        producer.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let swaps_done = swapper.join().unwrap();
    assert!(swaps_done > 2, "the swapper must have actually raced the traffic");

    // Metrics: gapless version lineage, every swap counted, exact
    // accounting — nothing lost, nothing double-counted.
    let snap = server.metrics();
    assert_eq!(snap.submitted, (PRODUCERS * REQUESTS) as u64);
    assert_eq!(snap.completed, (PRODUCERS * REQUESTS) as u64);
    assert_eq!(snap.failed, 0);
    assert_eq!(snap.shed, 0);
    let hot = snap.models.iter().find(|m| m.name == "hot").unwrap();
    assert_eq!(hot.version, swaps_done);
    assert_eq!(hot.swaps, swaps_done - 1, "every swap_model call must be counted");
    assert_eq!(hot.completed, (PRODUCERS * REQUESTS) as u64);
    assert_eq!(hot.in_flight, 0, "every quota slot must be released");
    assert_eq!(registry.version("hot").unwrap(), swaps_done);

    Arc::try_unwrap(server).ok().expect("all clients joined").shutdown();
}

#[test]
fn swap_is_zero_downtime_for_waiting_tickets() {
    // In-flight requests admitted before a swap must drain on the old
    // weights (their resolved Arc), not error and not see the new ones.
    let old = tiny_qnet(7);
    let new = tiny_qnet(8);
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", old.clone());
    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 1,
            queue_capacity: 64,
            // A long linger holds the admitted requests queued while the
            // swap lands under them.
            max_batch: 64,
            max_wait: Duration::from_millis(50),
            ..Default::default()
        },
    )
    .unwrap();

    let mut rng = TensorRng::seed_from(99);
    let imgs: Vec<Tensor> = (0..6).map(|_| rng.gaussian([3, 16, 16], 0.0, 0.7)).collect();
    let tickets: Vec<_> = imgs.iter().map(|img| server.submit("m", img.clone()).unwrap()).collect();
    let version = server.swap_model("m", new.clone()).unwrap();
    assert_eq!(version, 2);
    for (img, ticket) in imgs.iter().zip(tickets) {
        let response = ticket.wait().unwrap();
        assert_eq!(response.version, 1, "pre-swap admissions must drain on the old version");
        assert_eq!(bits(&response.logits), bits(&old.logits(img).unwrap()));
    }
    // Post-swap admissions compute on the new weights.
    let response = server.submit("m", imgs[0].clone()).unwrap().wait().unwrap();
    assert_eq!(response.version, 2);
    assert_eq!(bits(&response.logits), bits(&new.logits(&imgs[0]).unwrap()));
    server.shutdown();
}
