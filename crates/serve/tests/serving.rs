//! End-to-end tests of the serving runtime against real quantized
//! networks: correctness (responses byte-identical to direct `logits`
//! calls), backpressure (queue-full rejection), and dynamic batching
//! (batches > 1 under concurrent producers).

use std::sync::Arc;
use std::time::Duration;

use mfdfp_core::{calibrate, Ensemble, QuantizedNet};
use mfdfp_nn::zoo;
use mfdfp_serve::{ModelRegistry, ServeConfig, ServeError, Server};
use mfdfp_tensor::{Tensor, TensorRng};

/// A small calibrated MF-DFP network (3×16×16 input, 10 classes).
fn tiny_qnet(seed: u64) -> QuantizedNet {
    let mut rng = TensorRng::seed_from(seed);
    let mut net = zoo::quick_custom(3, 16, [4, 4, 8], 16, 10, &mut rng).unwrap();
    let x = rng.gaussian([4, 3, 16, 16], 0.0, 0.7);
    let plan = calibrate(&mut net, &[(x, vec![0, 1, 2, 3])], 8).unwrap();
    QuantizedNet::from_network(&net, &plan).unwrap()
}

/// Deterministic pseudo-random test images (`C×H×W` each).
fn images(count: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = TensorRng::seed_from(seed);
    (0..count).map(|_| rng.gaussian([3, 16, 16], 0.0, 0.7)).collect()
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn smoke_sequential_requests_match_direct_logits() {
    let q = tiny_qnet(21);
    let registry = Arc::new(ModelRegistry::new());
    registry.register("tiny", q.clone());
    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig { workers: 1, queue_capacity: 32, ..Default::default() },
    )
    .unwrap();

    let imgs = images(12, 7);
    for img in &imgs {
        let ticket = server.submit("tiny", img.clone()).unwrap();
        let response = ticket.wait().unwrap();
        let direct = q.logits(img).unwrap();
        assert_eq!(bits(&response.logits), bits(&direct), "served logits differ from direct");
        assert_eq!(response.class, direct.argmax());
        assert_eq!(response.model, "tiny");
        assert!(response.batch_size >= 1);
    }

    let snap = server.metrics();
    assert_eq!(snap.submitted, 12);
    assert_eq!(snap.completed, 12);
    assert_eq!(snap.rejected, 0);
    assert_eq!(snap.failed, 0);
    // Closed-loop single client ⇒ every batch had exactly one request.
    assert_eq!(snap.batch_histogram[0], 12);
    server.shutdown();
}

#[test]
fn admission_control_rejects_bad_requests() {
    let registry = Arc::new(ModelRegistry::new());
    registry.register("tiny", tiny_qnet(3));
    let server = Server::start(Arc::clone(&registry), ServeConfig::default()).unwrap();

    // Unknown model.
    let img = images(1, 1).pop().unwrap();
    assert!(matches!(
        server.submit("nope", img.clone()),
        Err(ServeError::UnknownModel(n)) if n == "nope"
    ));
    // Wrong input size (the model wants 3·16·16 = 768 elements).
    let bad = Tensor::zeros([3, 8, 8]);
    assert!(matches!(
        server.submit("tiny", bad),
        Err(ServeError::BadInput { expected: 768, actual: 192, .. })
    ));
    // Neither consumed queue capacity or counted as submitted.
    let snap = server.metrics();
    assert_eq!(snap.submitted, 0);
    assert_eq!(snap.queue_depth, 0);

    // Submitting after shutdown reports Closed.
    let server2 = Server::start(registry, ServeConfig::default()).unwrap();
    let registry2 = Arc::clone(server2.registry());
    server2.shutdown();
    drop(registry2);
}

#[test]
fn queue_full_rejection_under_burst() {
    let q = tiny_qnet(5);
    let registry = Arc::new(ModelRegistry::new());
    registry.register("tiny", q.clone());
    // Tiny queue, single worker, no batching: the worker serves at
    // millisecond pace while the burst below submits in microseconds, so
    // the queue must overflow deterministically.
    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 1,
            queue_capacity: 4,
            max_batch: 1,
            max_wait: Duration::ZERO,
            ..Default::default()
        },
    )
    .unwrap();

    let imgs = images(40, 13);
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for img in &imgs {
        match server.submit("tiny", img.clone()) {
            Ok(t) => tickets.push((t, img)),
            Err(ServeError::QueueFull { capacity }) => {
                assert_eq!(capacity, 4);
                rejected += 1;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(rejected > 0, "burst of 40 into capacity 4 must reject");
    // Every accepted request still completes, correctly.
    let accepted = tickets.len() as u64;
    for (ticket, img) in tickets {
        let response = ticket.wait().unwrap();
        let direct = q.logits(img).unwrap();
        assert_eq!(bits(&response.logits), bits(&direct));
    }
    let snap = server.metrics();
    assert_eq!(snap.rejected, rejected);
    assert_eq!(snap.submitted, accepted);
    assert_eq!(snap.completed, accepted);
    assert_eq!(snap.submitted + snap.rejected, 40);
    server.shutdown();
}

/// The headline acceptance test: ≥4 concurrent producers, the batcher
/// must form batches larger than one (observed via the batch-size
/// histogram) and every response must be byte-identical to a direct
/// `QuantizedNet::logits` call on the same input.
#[test]
fn concurrent_producers_form_batches_with_identical_results() {
    let q = tiny_qnet(11);
    let registry = Arc::new(ModelRegistry::new());
    registry.register("tiny", q.clone());
    let server = Arc::new(
        Server::start(
            Arc::clone(&registry),
            ServeConfig {
                workers: 1,
                queue_capacity: 128,
                max_batch: 8,
                max_wait: Duration::from_millis(20),
                ..Default::default()
            },
        )
        .unwrap(),
    );

    const PRODUCERS: usize = 4;
    const BURSTS: usize = 2;
    const BURST: usize = 8;
    let handles: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let server = Arc::clone(&server);
            let q = q.clone();
            std::thread::spawn(move || {
                let imgs = images(BURSTS * BURST, 100 + p as u64);
                for burst in imgs.chunks(BURST) {
                    // Open-loop burst: enqueue the whole burst before
                    // waiting, so the queue genuinely holds concurrent
                    // work; retry (bounded) on backpressure.
                    let mut tickets = Vec::new();
                    for img in burst {
                        loop {
                            match server.submit("tiny", img.clone()) {
                                Ok(t) => break tickets.push((t, img)),
                                Err(ServeError::QueueFull { .. }) => {
                                    std::thread::sleep(Duration::from_millis(1));
                                }
                                Err(e) => panic!("unexpected error {e}"),
                            }
                        }
                    }
                    for (ticket, img) in tickets {
                        let response = ticket.wait().unwrap();
                        let direct = q.logits(img).unwrap();
                        assert_eq!(
                            bits(&response.logits),
                            bits(&direct),
                            "batched response differs from direct logits"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let snap = server.metrics();
    let total = (PRODUCERS * BURSTS * BURST) as u64;
    assert_eq!(snap.completed, total);
    assert_eq!(snap.failed, 0);
    // The batcher must have coalesced: some batch larger than one request,
    // visible in the batch-size histogram.
    assert!(
        snap.max_batch_observed() >= 2,
        "no batch >1 formed: histogram {:?}",
        snap.batch_histogram
    );
    // Histogram accounting: dispatched request count equals completions.
    let dispatched: u64 =
        snap.batch_histogram.iter().enumerate().map(|(i, &c)| (i as u64 + 1) * c).sum();
    assert_eq!(dispatched, total);
    assert!(snap.p50_latency_us > 0.0 && snap.p99_latency_us >= snap.p50_latency_us);
    assert!(snap.throughput_rps > 0.0);
    let json = snap.to_json();
    assert!(json.contains("\"batch_histogram\""));
}

/// Batch-fused acceptance: mixed-size open-loop bursts (every size
/// 1..=8, plus ragged repeats) drive the worker through the batch-fused
/// forward at genuinely varied batch sizes; every response must be
/// byte-identical to a direct per-image `QuantizedNet::logits` call, and
/// the batch histogram must prove that batches larger than one — i.e.
/// the fused one-im2col/one-qgemm-per-layer path with B > 1 — actually
/// ran.
#[test]
fn mixed_batch_size_traffic_is_bit_identical_to_per_image() {
    let q = tiny_qnet(71);
    let registry = Arc::new(ModelRegistry::new());
    registry.register("tiny", q.clone());
    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 1,
            queue_capacity: 128,
            max_batch: 8,
            max_wait: Duration::from_millis(10),
            ..Default::default()
        },
    )
    .unwrap();

    // Each burst is enqueued in full before any of its tickets is
    // awaited, so the single worker sees varied queue depths and the
    // batcher forms ragged batches (submission is microseconds while an
    // inference is much longer, so bursts pile up behind the in-flight
    // batch).
    let mut total = 0u64;
    for (i, burst) in (1usize..=8).chain([3, 5]).enumerate() {
        let imgs = images(burst, 200 + i as u64);
        let tickets: Vec<_> =
            imgs.iter().map(|img| (server.submit("tiny", img.clone()).unwrap(), img)).collect();
        for (ticket, img) in tickets {
            let response = ticket.wait().unwrap();
            let direct = q.logits(img).unwrap();
            assert_eq!(
                bits(&response.logits),
                bits(&direct),
                "burst {i}: fused batched response differs from per-image logits"
            );
            assert!(response.batch_size >= 1 && response.batch_size <= 8);
            total += 1;
        }
    }

    let snap = server.metrics();
    assert_eq!(snap.completed, total);
    assert_eq!(snap.failed, 0);
    assert!(
        snap.max_batch_observed() >= 2,
        "mixed traffic never exercised the fused path at B > 1: histogram {:?}",
        snap.batch_histogram
    );
    assert!(snap.batch_histogram[0] >= 1, "the singleton burst must have run as a 1-batch");
    // Histogram accounting: dispatched request count equals completions.
    let dispatched: u64 =
        snap.batch_histogram.iter().enumerate().map(|(i, &c)| (i as u64 + 1) * c).sum();
    assert_eq!(dispatched, total);
    server.shutdown();
}

/// Two requests with equal element counts but different shapes (`[768]`
/// vs `[3,16,16]`) must coalesce into one batch safely — the datapath
/// reads flat element slices, so shape must never poison a batch.
#[test]
fn mixed_shapes_with_equal_len_batch_safely() {
    let q = tiny_qnet(41);
    let registry = Arc::new(ModelRegistry::new());
    registry.register("tiny", q.clone());
    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 1,
            queue_capacity: 16,
            max_batch: 4,
            max_wait: Duration::from_millis(20),
            ..Default::default()
        },
    )
    .unwrap();

    let img = images(1, 19).pop().unwrap();
    let flat = img.reshape([768]).unwrap();
    // Open burst: both sit in the queue together, so the batcher will
    // coalesce them (and must not trip on the shape difference).
    let t1 = server.submit("tiny", img.clone()).unwrap();
    let t2 = server.submit("tiny", flat.clone()).unwrap();
    let direct = q.logits(&img).unwrap();
    for ticket in [t1, t2] {
        let response = ticket.wait().unwrap();
        assert_eq!(bits(&response.logits), bits(&direct));
    }
    let snap = server.metrics();
    assert_eq!(snap.completed, 2);
    assert_eq!(snap.failed, 0);
    server.shutdown();
}

#[test]
fn ensemble_and_multi_model_serving() {
    let a = tiny_qnet(31);
    let b = tiny_qnet(32);
    let ensemble = Ensemble::new(vec![a.clone(), b.clone()]).unwrap();
    let registry = Arc::new(ModelRegistry::new());
    registry.register("a", a.clone());
    registry.register("duo", ensemble.clone());
    assert_eq!(registry.names(), vec!["a".to_string(), "duo".to_string()]);
    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 8,
            max_wait: Duration::from_millis(5),
            ..Default::default()
        },
    )
    .unwrap();

    let imgs = images(6, 77);
    let tickets: Vec<_> = imgs
        .iter()
        .enumerate()
        .map(|(i, img)| {
            let name = if i % 2 == 0 { "a" } else { "duo" };
            (name, img, server.submit(name, img.clone()).unwrap())
        })
        .collect();
    for (name, img, ticket) in tickets {
        let response = ticket.wait().unwrap();
        let direct = if name == "a" {
            a.logits(img).unwrap()
        } else {
            let batch = Tensor::stack_axis0(std::slice::from_ref(img)).unwrap();
            ensemble.logits_batch(&batch).unwrap().index_axis0(0)
        };
        assert_eq!(bits(&response.logits), bits(&direct), "model {name}");
    }
    // Removing a model stops new admissions but the registry handed to the
    // server stays shared.
    assert!(registry.remove("a"));
    assert!(matches!(server.submit("a", imgs[0].clone()), Err(ServeError::UnknownModel(_))));
    server.shutdown();
}

/// The metrics snapshot must surface the shared `mfdfp-rt` pool in a
/// schema-stable way: fields always present; on a `parallel` build the
/// dispatch path engages the pool (tasks counted, width ≥ 1), on a
/// default build the pool is never instantiated (width 0, counters 0).
#[test]
fn snapshot_surfaces_pool_stats() {
    let q = tiny_qnet(55);
    let registry = Arc::new(ModelRegistry::new());
    registry.register("tiny", q);
    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig { workers: 1, queue_capacity: 16, ..Default::default() },
    )
    .unwrap();
    for img in images(4, 9) {
        server.submit("tiny", img).unwrap().wait().unwrap();
    }
    let snap = server.metrics();
    let json = snap.to_json();
    assert!(json.contains("\"pool\":{\"threads\":"), "pool object missing in {json}");

    #[cfg(feature = "parallel")]
    {
        // Each dispatched group is one pool task, so 4 single-request
        // batches must have moved the counter (other suites in this
        // process may have moved it further; >= is the invariant).
        assert!(snap.pool_threads >= 1, "parallel dispatch must engage the pool");
        assert!(snap.pool_tasks_run >= 4, "groups must run as pool tasks");
    }
    #[cfg(not(feature = "parallel"))]
    {
        assert_eq!(snap.pool_threads, 0, "default build must never engage the pool");
        assert_eq!(snap.pool_tasks_run, 0);
    }
    server.shutdown();
}

/// The snapshot must attribute traffic per model and per pipeline stage,
/// and carry the op-count/energy sub-objects — with the same JSON schema
/// whether or not the `obs` feature is compiled in.
#[test]
fn snapshot_breaks_down_stages_models_ops_and_energy() {
    let a = tiny_qnet(61);
    let b = tiny_qnet(62);
    let registry = Arc::new(ModelRegistry::new());
    registry.register("alpha", a);
    registry.register("beta", b);
    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig { workers: 1, queue_capacity: 32, ..Default::default() },
    )
    .unwrap();
    let imgs = images(6, 23);
    for (i, img) in imgs.iter().enumerate() {
        let name = if i % 3 == 0 { "beta" } else { "alpha" };
        server.submit(name, img.clone()).unwrap().wait().unwrap();
    }
    // The last response is delivered (unblocking `wait`) a hair before the
    // worker records its respond-stage sample; poll the snapshot until the
    // worker catches up.
    let snap = std::iter::repeat_with(|| {
        std::thread::sleep(Duration::from_millis(1));
        server.metrics()
    })
    .take(2000)
    .find(|s| s.stages.respond.count == 6)
    .expect("worker never recorded the final respond stage");

    // Per-model attribution: registry-keyed, sorted by name, counts adding
    // up to the global view.
    assert_eq!(snap.models.len(), 2);
    assert_eq!(snap.models[0].name, "alpha");
    assert_eq!(snap.models[1].name, "beta");
    assert_eq!((snap.models[0].submitted, snap.models[0].completed), (4, 4));
    assert_eq!((snap.models[1].submitted, snap.models[1].completed), (2, 2));
    assert_eq!(snap.models[0].completed + snap.models[1].completed, snap.completed);
    assert!(snap.models[0].mean_latency_us > 0.0);
    assert_eq!(snap.models[0].batch_histogram[0], 4, "closed loop ⇒ singleton batches");

    // Stage breakdown: one queue-wait per request, one infer/respond per
    // dispatched batch (closed loop ⇒ 6 singleton batches).
    assert_eq!(snap.stages.queue_wait.count, 6);
    assert_eq!(snap.stages.infer.count, 6);
    assert_eq!(snap.stages.respond.count, 6);
    assert!(snap.stages.infer.mean_us > 0.0);
    assert!(snap.stages.infer.p99_us >= snap.stages.infer.p50_us);

    // Op counters and their energy estimate: real shift-MAC work with
    // `obs` on, exact zeros (but identical schema) with it off.
    #[cfg(feature = "obs")]
    {
        assert!(snap.ops.shift_macs > 0, "served inference must count shift-MACs");
        assert!(snap.ops.im2col_bytes > 0, "conv layers must count staged bytes");
        assert!(snap.energy.total_uj > 0.0);
        assert!(snap.energy.saving_pct > 50.0, "{}", snap.energy.saving_pct);
    }
    #[cfg(not(feature = "obs"))]
    {
        assert_eq!(snap.ops.shift_macs, 0);
        assert_eq!(snap.energy.total_uj, 0.0);
    }
    assert!(snap.energy.fp32_baseline_uj >= snap.energy.total_uj);

    let json = snap.to_json();
    for key in [
        "\"stages\":{\"queue_wait\":{\"count\":6",
        "\"models\":{\"alpha\":{\"submitted\":4",
        "\"beta\":{\"submitted\":2",
        "\"ops\":{\"shift_macs\":",
        "\"energy_estimate\":{\"mac_uj\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    server.shutdown();
}
