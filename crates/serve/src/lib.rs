//! # mfdfp-serve — dynamic-batching inference serving for MF-DFP networks
//!
//! The paper's end product is an accelerator that answers classification
//! queries with multiplier-free shift/add arithmetic; this crate is the
//! software layer that turns *concurrent request traffic* into efficient
//! *batched* work for that datapath — the role tract/burn-style serving
//! stacks play above their kernel layers. `std`-only, like the rest of the
//! workspace.
//!
//! Pipeline:
//!
//! 1. **Front-end (optional)** — [`HttpServer`] exposes the tier over
//!    `std`-only HTTP/1.1 (thread-per-connection, hand-rolled parser
//!    with strict size limits — see [`http`]): `POST /v1/infer/<model>`
//!    with a JSON f32 array, `GET /v1/models`, `GET /v1/metrics`.
//!    Logits cross the wire bit-exactly; the `x-mfdfp-deadline-us` and
//!    `x-mfdfp-priority` headers map onto the admission options below.
//! 2. **Admission control** — [`Server::submit`] /
//!    [`Server::submit_with`] resolves the model (and its version) in
//!    the [`ModelRegistry`], validates the input size, takes a
//!    per-model quota slot ([`ServeConfig::model_quota`], rejected as
//!    [`ServeError::QuotaExceeded`]), and routes to
//!    `hash(model) % shards` — each shard an independent bounded MPMC
//!    queue + worker pool, so a slow model cannot convoy a fast one. A
//!    full queue rejects immediately ([`ServeError::QueueFull`]) so
//!    overload surfaces as backpressure, not unbounded memory.
//!    [`SubmitOptions`] attaches an optional deadline and a priority
//!    lane ([`Priority::High`] dispatches ahead of throughput batches).
//! 3. **Micro-batching** — shard workers pop a request and linger up to
//!    [`ServeConfig::max_wait`] to coalesce up to
//!    [`ServeConfig::max_batch`] requests, **shed** every request whose
//!    deadline expired while it queued ([`ServeError::DeadlineExceeded`]
//!    — zero datapath time spent), group by the resolved model's
//!    allocation identity (a batch never mixes two models or two
//!    versions of one — the invariant behind zero-downtime
//!    [`Server::swap_model`] hot swaps), and dispatch each group through
//!    `QuantizedNet::logits_batch` / `Ensemble::logits_batch` under
//!    `catch_unwind` (a panicking dispatch degrades to typed
//!    [`ServeError::WorkerPanic`] responses; the worker survives). With
//!    the `parallel` feature, each group is submitted as a task on the
//!    persistent `mfdfp-rt` pool — the same pool the GEMM/conv kernels
//!    fan out on, so no code path ever spawns threads per call and the
//!    compute footprint is bounded by
//!    `shards × workers + pool width − 1` threads (see README
//!    "Threading model").
//! 4. **Telemetry** — [`ServerMetrics`] tracks throughput, latency
//!    percentiles, per-shard queue depths, shed/rejection counters, the
//!    batch-size histogram, a per-stage breakdown (queue-wait /
//!    inference / response send), a per-model registry of the same
//!    series (including version and swap counts), the process-wide
//!    datapath op counters with their energy estimate, and the shared
//!    pool's counters; [`MetricsSnapshot::to_json`] exports it all
//!    under a schema that is stable across feature sets. With the `obs`
//!    feature the pipeline stages also emit flight-recorder spans
//!    (`serve.accept`, `serve.http_parse`, `serve.submit`,
//!    `serve.route`, `serve.batch_form`, `serve.shed`,
//!    `serve.queue_wait`, `serve.infer`, `serve.respond`) exportable as
//!    a Chrome/Perfetto trace.
//!
//! 5. **Self-healing** — a supervisor thread per server runs a worker
//!    **watchdog** (heartbeat-stale or dead workers are respawned
//!    crash-only and counted) and the **adaptive degradation**
//!    controller (queue-wait p95 over [`DegradeConfig::target_p95`]
//!    trims ensemble members one hysteretic step at a time — a degraded
//!    answer is bit-identical to the truncated ensemble served
//!    standalone, and flagged via [`Response::degraded`]). Per-model
//!    **circuit breakers** ([`BreakerConfig`]) fast-fail admissions
//!    with [`ServeError::CircuitOpen`] after consecutive dispatch
//!    failures and recover through half-open probes with exponential
//!    backoff. [`Server::health`] / `GET /v1/health` expose heartbeat
//!    ages, breaker states, the degrade level and respawn counts;
//!    [`Server::shutdown_within`] drains on a deadline, answering
//!    leftovers with [`ServeError::ShuttingDown`] so the request
//!    accounting still balances exactly.
//!
//! Failure paths are provable: the [`fault`] module compiles
//! deterministic injection points (queue-full, worker panic, slow
//! batch, registry-read dwell, worker hang, worker death) into test
//! builds — and to inline no-ops in production builds — so the chaos
//! and fault harnesses in `tests/` can drive every degradation and
//! self-healing path on demand.
//!
//! Batching changes *when* images are evaluated, never *what* they
//! evaluate to: responses are byte-identical to direct `logits` calls
//! (property-tested in `mfdfp-core`, asserted end-to-end in this crate's
//! tests).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use mfdfp_serve::{ModelRegistry, ServeConfig, Server};
//!
//! let registry = Arc::new(ModelRegistry::new());
//! // registry.register("cifar10", quantized_net);
//! let server = Server::start(registry, ServeConfig::default())?;
//! // let ticket = server.submit("cifar10", image)?;
//! // let response = ticket.wait()?;
//! server.shutdown();
//! # Ok::<(), mfdfp_serve::ServeError>(())
//! ```

#![deny(missing_docs)]

mod breaker;
mod config;
mod error;
pub mod fault;
pub mod http;
mod metrics;
mod queue;
mod registry;
mod server;
mod shard;
mod supervisor;

pub use breaker::{BreakerSnapshot, BreakerState};
pub use config::{BreakerConfig, DegradeConfig, HttpConfig, ServeConfig};
pub use error::{Result, ServeError};
pub use http::HttpServer;
pub use metrics::{
    MetricsSnapshot, ModelMetrics, ModelSnapshot, ServerMetrics, StageSnapshot, StagesSnapshot,
};
pub use queue::{BoundedQueue, PopTick, PushRejection};
pub use registry::{ModelRegistry, ServedModel};
pub use server::{HealthSnapshot, Priority, Response, Server, ShardHealth, SubmitOptions, Ticket};
