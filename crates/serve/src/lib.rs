//! # mfdfp-serve — dynamic-batching inference serving for MF-DFP networks
//!
//! The paper's end product is an accelerator that answers classification
//! queries with multiplier-free shift/add arithmetic; this crate is the
//! software layer that turns *concurrent request traffic* into efficient
//! *batched* work for that datapath — the role tract/burn-style serving
//! stacks play above their kernel layers. `std`-only, like the rest of the
//! workspace.
//!
//! Pipeline:
//!
//! 1. **Admission control** — [`Server::submit`] resolves the model in the
//!    [`ModelRegistry`], validates the input size, and enqueues into a
//!    bounded MPMC queue; a full queue rejects immediately
//!    ([`ServeError::QueueFull`]) so overload surfaces as backpressure,
//!    not unbounded memory.
//! 2. **Micro-batching** — worker threads pop a request and linger up to
//!    [`ServeConfig::max_wait`] to coalesce up to
//!    [`ServeConfig::max_batch`] requests, then dispatch the batch through
//!    `QuantizedNet::logits_batch` / `Ensemble::logits_batch`. With the
//!    `parallel` feature, each per-model group is submitted as a task on
//!    the persistent `mfdfp-rt` pool — the same pool the GEMM/conv
//!    kernels fan out on, so no code path ever spawns threads per call
//!    and the compute footprint is bounded by
//!    `workers + pool width − 1` threads (see README "Threading model").
//! 3. **Telemetry** — [`ServerMetrics`] tracks throughput, latency
//!    percentiles, queue depth, the batch-size histogram, a per-stage
//!    breakdown (queue-wait / inference / response send), a per-model
//!    registry of the same series, the process-wide datapath op counters
//!    with their energy estimate, and the shared pool's counters;
//!    [`MetricsSnapshot::to_json`] exports it all under a schema that is
//!    stable across feature sets. With the `obs` feature the pipeline
//!    stages also emit flight-recorder spans (`serve.submit`,
//!    `serve.batch_form`, `serve.queue_wait`, `serve.infer`,
//!    `serve.respond`) exportable as a Chrome/Perfetto trace.
//!
//! Batching changes *when* images are evaluated, never *what* they
//! evaluate to: responses are byte-identical to direct `logits` calls
//! (property-tested in `mfdfp-core`, asserted end-to-end in this crate's
//! tests).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use mfdfp_serve::{ModelRegistry, ServeConfig, Server};
//!
//! let registry = Arc::new(ModelRegistry::new());
//! // registry.register("cifar10", quantized_net);
//! let server = Server::start(registry, ServeConfig::default())?;
//! // let ticket = server.submit("cifar10", image)?;
//! // let response = ticket.wait()?;
//! server.shutdown();
//! # Ok::<(), mfdfp_serve::ServeError>(())
//! ```

#![deny(missing_docs)]

mod config;
mod error;
mod metrics;
mod queue;
mod registry;
mod server;

pub use config::ServeConfig;
pub use error::{Result, ServeError};
pub use metrics::{
    MetricsSnapshot, ModelMetrics, ModelSnapshot, ServerMetrics, StageSnapshot, StagesSnapshot,
};
pub use queue::{BoundedQueue, PushRejection};
pub use registry::{ModelRegistry, ServedModel};
pub use server::{Response, Server, Ticket};
