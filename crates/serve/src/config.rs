//! Serving runtime tuning knobs.

use std::time::Duration;

use crate::error::{Result, ServeError};

/// Configuration for a [`crate::Server`].
///
/// The two batching knobs trade latency for throughput exactly like the
/// dynamic batchers in production serving stacks: a worker that pops a
/// request keeps the batch open until it holds `max_batch` requests or
/// `max_wait` has elapsed since the pop, whichever comes first. A batch
/// dispatches through `logits_batch`, which (with the `parallel` feature)
/// fans images out across the PR-1 threaded GEMM/conv path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads draining the queue (each dispatches whole batches).
    pub workers: usize,
    /// Bounded request-queue capacity; submissions beyond it are rejected
    /// with [`ServeError::QueueFull`] (admission control).
    pub queue_capacity: usize,
    /// Largest batch a worker will coalesce before dispatching.
    pub max_batch: usize,
    /// How long a worker holds an open batch waiting for more requests.
    pub max_wait: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            queue_capacity: 256,
            max_batch: 16,
            max_wait: Duration::from_micros(2000),
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for zero workers, zero capacity
    /// or a zero batch bound.
    pub fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(ServeError::BadConfig("workers must be at least 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::BadConfig("queue_capacity must be at least 1".into()));
        }
        if self.max_batch == 0 {
            return Err(ServeError::BadConfig("max_batch must be at least 1".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_knobs_rejected() {
        for cfg in [
            ServeConfig { workers: 0, ..Default::default() },
            ServeConfig { queue_capacity: 0, ..Default::default() },
            ServeConfig { max_batch: 0, ..Default::default() },
        ] {
            assert!(matches!(cfg.validate(), Err(ServeError::BadConfig(_))));
        }
    }
}
