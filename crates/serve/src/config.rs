//! Serving runtime tuning knobs.

use std::time::Duration;

use crate::error::{Result, ServeError};

/// Configuration for a [`crate::Server`].
///
/// The two batching knobs trade latency for throughput exactly like the
/// dynamic batchers in production serving stacks: a worker that pops a
/// request keeps the batch open until it holds `max_batch` requests or
/// `max_wait` has elapsed since the pop, whichever comes first. A batch
/// dispatches through `logits_batch`, which (with the `parallel` feature)
/// fans images out across the PR-1 threaded GEMM/conv path.
///
/// The sharding knob splits the server into `shards` independent
/// (queue + worker pool) units; requests route by a stable hash of the
/// model name, so independent models stop contending on one queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Independent worker shards. Each shard owns its bounded queue and
    /// its own worker pool; a request routes to `hash(model) % shards`.
    pub shards: usize,
    /// Worker threads draining each shard's queue (each dispatches whole
    /// batches); the total worker count is `shards × workers`.
    pub workers: usize,
    /// Bounded per-shard request-queue capacity; submissions beyond it
    /// are rejected with [`ServeError::QueueFull`] (admission control).
    pub queue_capacity: usize,
    /// Largest batch a worker will coalesce before dispatching.
    pub max_batch: usize,
    /// How long a worker holds an open batch waiting for more requests.
    pub max_wait: Duration,
    /// Per-model in-flight quota: at most this many requests per model
    /// may be queued/in flight at once; the excess is rejected with
    /// [`ServeError::QuotaExceeded`]. `None` disables quotas.
    pub model_quota: Option<u64>,
    /// Per-model circuit breakers ([`ServeError::CircuitOpen`] fast
    /// fail after consecutive dispatch failures). `None` disables them.
    pub breaker: Option<BreakerConfig>,
    /// Adaptive ensemble degradation: when recent queue-wait p95 crosses
    /// the configured target, ensembles serve a truncated member prefix
    /// until pressure falls. `None` (the default) disables degradation.
    pub degrade: Option<DegradeConfig>,
    /// How often the supervisor thread scans worker heartbeats and the
    /// degradation controller re-evaluates queue pressure. Also the
    /// heartbeat cadence of an idle worker parked on its queue.
    pub supervise_interval: Duration,
    /// A worker whose heartbeat is older than this is declared hung and
    /// crash-only respawned by the watchdog (its thread is detached, a
    /// replacement takes its slot). Must comfortably exceed the longest
    /// legitimate batch dispatch.
    pub hang_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 1,
            workers: 1,
            queue_capacity: 256,
            max_batch: 16,
            max_wait: Duration::from_micros(2000),
            model_quota: None,
            breaker: Some(BreakerConfig::default()),
            degrade: None,
            supervise_interval: Duration::from_millis(20),
            hang_timeout: Duration::from_secs(2),
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for zero shards, zero workers,
    /// zero capacity, a zero batch bound or a zero quota.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(ServeError::BadConfig("shards must be at least 1".into()));
        }
        if self.workers == 0 {
            return Err(ServeError::BadConfig("workers must be at least 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::BadConfig("queue_capacity must be at least 1".into()));
        }
        if self.max_batch == 0 {
            return Err(ServeError::BadConfig("max_batch must be at least 1".into()));
        }
        if self.model_quota == Some(0) {
            return Err(ServeError::BadConfig("model_quota must be at least 1 (or None)".into()));
        }
        if let Some(b) = &self.breaker {
            b.validate()?;
        }
        if let Some(d) = &self.degrade {
            d.validate()?;
        }
        if self.supervise_interval.is_zero() {
            return Err(ServeError::BadConfig("supervise_interval must be positive".into()));
        }
        if self.hang_timeout <= self.supervise_interval {
            return Err(ServeError::BadConfig(
                "hang_timeout must exceed supervise_interval, or every idle heartbeat \
                 gap reads as a hang"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Tuning of the per-model circuit breaker (see
/// [`ServeError::CircuitOpen`]).
///
/// The breaker counts *consecutive* dispatch failures
/// ([`ServeError::WorkerPanic`] / [`ServeError::Inference`]); at
/// `threshold` it opens and fast-fails admissions for `backoff`. It then
/// half-opens: up to `probes` requests are admitted as probes; one
/// probe success closes the circuit (and resets the backoff), one probe
/// failure re-opens it with the backoff doubled, capped at
/// `backoff_max`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive dispatch failures that open the circuit.
    pub threshold: u32,
    /// How long the circuit stays open after the first trip.
    pub backoff: Duration,
    /// Ceiling of the exponential backoff across repeated re-opens.
    pub backoff_max: Duration,
    /// Concurrent probe admissions while half-open.
    pub probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 5,
            backoff: Duration::from_millis(100),
            backoff_max: Duration::from_secs(5),
            probes: 1,
        }
    }
}

impl BreakerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for zero knobs or a backoff cap
    /// below the base backoff.
    pub fn validate(&self) -> Result<()> {
        if self.threshold == 0 || self.probes == 0 {
            return Err(ServeError::BadConfig(
                "breaker threshold and probes must be at least 1".into(),
            ));
        }
        if self.backoff.is_zero() {
            return Err(ServeError::BadConfig("breaker backoff must be positive".into()));
        }
        if self.backoff_max < self.backoff {
            return Err(ServeError::BadConfig(
                "breaker backoff_max must be at least the base backoff".into(),
            ));
        }
        Ok(())
    }
}

/// Tuning of adaptive ensemble degradation — the paper's Table 3
/// accuracy-for-cost dial turned into a runtime controller.
///
/// Every supervise tick the controller computes the queue-wait p95 over
/// the requests recorded *since the previous tick*. Above `target_p95`
/// the degradation level rises by one (each level drops one ensemble
/// member from the served prefix, floored at one member); only after
/// `release_ticks` consecutive calm ticks (p95 under half the target, or
/// no traffic) does it step back down — hysteresis, so the dial does not
/// flap on a noisy boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradeConfig {
    /// Queue-wait p95 above which the tier sheds ensemble members.
    pub target_p95: Duration,
    /// Consecutive calm ticks required before restoring one member.
    pub release_ticks: u32,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig { target_p95: Duration::from_millis(50), release_ticks: 3 }
    }
}

impl DegradeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for a zero target or zero
    /// release ticks.
    pub fn validate(&self) -> Result<()> {
        if self.target_p95.is_zero() {
            return Err(ServeError::BadConfig("degrade target_p95 must be positive".into()));
        }
        if self.release_ticks == 0 {
            return Err(ServeError::BadConfig("degrade release_ticks must be at least 1".into()));
        }
        Ok(())
    }
}

/// Limits and knobs for the HTTP/1.1 front-end ([`crate::HttpServer`]).
///
/// The defaults are deliberately strict: the hand-rolled parser enforces
/// every bound *before* buffering, so a hostile peer cannot make the
/// server allocate more than `max_head_bytes + max_body_bytes` per
/// connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpConfig {
    /// Largest accepted request head (request line + headers, through the
    /// terminating blank line). Larger heads are rejected with `431`.
    pub max_head_bytes: usize,
    /// Largest accepted request body (`Content-Length`); larger bodies
    /// are rejected with `413` without reading them.
    pub max_body_bytes: usize,
    /// Concurrent connections served; the acceptor answers `503` and
    /// closes once this many handler threads are live (load shedding at
    /// the edge).
    pub max_connections: usize,
    /// Per-read socket timeout: the granularity at which a blocked
    /// handler thread wakes to check its idle deadline.
    pub read_timeout: Duration,
    /// Keep-alive idle deadline: a connection that does not deliver a
    /// complete request within this long of being accepted (or of its
    /// previous response) is answered `408 Request Timeout` and closed,
    /// releasing its connection-cap slot. A slow-loris peer trickling
    /// partial bytes is held to the same deadline. Counted in the
    /// `http_idle_closed` metric.
    pub idle_timeout: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            max_connections: 64,
            read_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
        }
    }
}

impl HttpConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for zero limits.
    pub fn validate(&self) -> Result<()> {
        if self.max_head_bytes == 0 || self.max_body_bytes == 0 {
            return Err(ServeError::BadConfig("http byte limits must be positive".into()));
        }
        if self.max_connections == 0 {
            return Err(ServeError::BadConfig("max_connections must be at least 1".into()));
        }
        if self.read_timeout.is_zero() {
            return Err(ServeError::BadConfig("read_timeout must be positive".into()));
        }
        if self.idle_timeout.is_zero() {
            return Err(ServeError::BadConfig("idle_timeout must be positive".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(ServeConfig::default().validate().is_ok());
        assert!(HttpConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_knobs_rejected() {
        for cfg in [
            ServeConfig { shards: 0, ..Default::default() },
            ServeConfig { workers: 0, ..Default::default() },
            ServeConfig { queue_capacity: 0, ..Default::default() },
            ServeConfig { max_batch: 0, ..Default::default() },
            ServeConfig { model_quota: Some(0), ..Default::default() },
            ServeConfig {
                breaker: Some(BreakerConfig { threshold: 0, ..Default::default() }),
                ..Default::default()
            },
            ServeConfig {
                breaker: Some(BreakerConfig { backoff: Duration::ZERO, ..Default::default() }),
                ..Default::default()
            },
            ServeConfig {
                breaker: Some(BreakerConfig {
                    backoff: Duration::from_secs(1),
                    backoff_max: Duration::from_millis(1),
                    ..Default::default()
                }),
                ..Default::default()
            },
            ServeConfig {
                degrade: Some(DegradeConfig { target_p95: Duration::ZERO, ..Default::default() }),
                ..Default::default()
            },
            ServeConfig {
                degrade: Some(DegradeConfig { release_ticks: 0, ..Default::default() }),
                ..Default::default()
            },
            ServeConfig { supervise_interval: Duration::ZERO, ..Default::default() },
            ServeConfig {
                supervise_interval: Duration::from_secs(3),
                hang_timeout: Duration::from_secs(2),
                ..Default::default()
            },
        ] {
            assert!(matches!(cfg.validate(), Err(ServeError::BadConfig(_))));
        }
        for cfg in [
            HttpConfig { max_head_bytes: 0, ..Default::default() },
            HttpConfig { max_body_bytes: 0, ..Default::default() },
            HttpConfig { max_connections: 0, ..Default::default() },
            HttpConfig { read_timeout: Duration::ZERO, ..Default::default() },
            HttpConfig { idle_timeout: Duration::ZERO, ..Default::default() },
        ] {
            assert!(matches!(cfg.validate(), Err(ServeError::BadConfig(_))));
        }
    }
}
