//! Serving runtime tuning knobs.

use std::time::Duration;

use crate::error::{Result, ServeError};

/// Configuration for a [`crate::Server`].
///
/// The two batching knobs trade latency for throughput exactly like the
/// dynamic batchers in production serving stacks: a worker that pops a
/// request keeps the batch open until it holds `max_batch` requests or
/// `max_wait` has elapsed since the pop, whichever comes first. A batch
/// dispatches through `logits_batch`, which (with the `parallel` feature)
/// fans images out across the PR-1 threaded GEMM/conv path.
///
/// The sharding knob splits the server into `shards` independent
/// (queue + worker pool) units; requests route by a stable hash of the
/// model name, so independent models stop contending on one queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Independent worker shards. Each shard owns its bounded queue and
    /// its own worker pool; a request routes to `hash(model) % shards`.
    pub shards: usize,
    /// Worker threads draining each shard's queue (each dispatches whole
    /// batches); the total worker count is `shards × workers`.
    pub workers: usize,
    /// Bounded per-shard request-queue capacity; submissions beyond it
    /// are rejected with [`ServeError::QueueFull`] (admission control).
    pub queue_capacity: usize,
    /// Largest batch a worker will coalesce before dispatching.
    pub max_batch: usize,
    /// How long a worker holds an open batch waiting for more requests.
    pub max_wait: Duration,
    /// Per-model in-flight quota: at most this many requests per model
    /// may be queued/in flight at once; the excess is rejected with
    /// [`ServeError::QuotaExceeded`]. `None` disables quotas.
    pub model_quota: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 1,
            workers: 1,
            queue_capacity: 256,
            max_batch: 16,
            max_wait: Duration::from_micros(2000),
            model_quota: None,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for zero shards, zero workers,
    /// zero capacity, a zero batch bound or a zero quota.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(ServeError::BadConfig("shards must be at least 1".into()));
        }
        if self.workers == 0 {
            return Err(ServeError::BadConfig("workers must be at least 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::BadConfig("queue_capacity must be at least 1".into()));
        }
        if self.max_batch == 0 {
            return Err(ServeError::BadConfig("max_batch must be at least 1".into()));
        }
        if self.model_quota == Some(0) {
            return Err(ServeError::BadConfig("model_quota must be at least 1 (or None)".into()));
        }
        Ok(())
    }
}

/// Limits and knobs for the HTTP/1.1 front-end ([`crate::HttpServer`]).
///
/// The defaults are deliberately strict: the hand-rolled parser enforces
/// every bound *before* buffering, so a hostile peer cannot make the
/// server allocate more than `max_head_bytes + max_body_bytes` per
/// connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpConfig {
    /// Largest accepted request head (request line + headers, through the
    /// terminating blank line). Larger heads are rejected with `431`.
    pub max_head_bytes: usize,
    /// Largest accepted request body (`Content-Length`); larger bodies
    /// are rejected with `413` without reading them.
    pub max_body_bytes: usize,
    /// Concurrent connections served; the acceptor answers `503` and
    /// closes once this many handler threads are live (load shedding at
    /// the edge).
    pub max_connections: usize,
    /// Per-socket read timeout: an idle keep-alive connection is dropped
    /// after this long, so handler threads cannot leak.
    pub read_timeout: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            max_connections: 64,
            read_timeout: Duration::from_secs(5),
        }
    }
}

impl HttpConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for zero limits.
    pub fn validate(&self) -> Result<()> {
        if self.max_head_bytes == 0 || self.max_body_bytes == 0 {
            return Err(ServeError::BadConfig("http byte limits must be positive".into()));
        }
        if self.max_connections == 0 {
            return Err(ServeError::BadConfig("max_connections must be at least 1".into()));
        }
        if self.read_timeout.is_zero() {
            return Err(ServeError::BadConfig("read_timeout must be positive".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(ServeConfig::default().validate().is_ok());
        assert!(HttpConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_knobs_rejected() {
        for cfg in [
            ServeConfig { shards: 0, ..Default::default() },
            ServeConfig { workers: 0, ..Default::default() },
            ServeConfig { queue_capacity: 0, ..Default::default() },
            ServeConfig { max_batch: 0, ..Default::default() },
            ServeConfig { model_quota: Some(0), ..Default::default() },
        ] {
            assert!(matches!(cfg.validate(), Err(ServeError::BadConfig(_))));
        }
        for cfg in [
            HttpConfig { max_head_bytes: 0, ..Default::default() },
            HttpConfig { max_body_bytes: 0, ..Default::default() },
            HttpConfig { max_connections: 0, ..Default::default() },
            HttpConfig { read_timeout: Duration::ZERO, ..Default::default() },
        ] {
            assert!(matches!(cfg.validate(), Err(ServeError::BadConfig(_))));
        }
    }
}
