//! Per-model circuit breakers: fast-fail admission for models whose
//! dispatches keep failing.
//!
//! A model caught in a panic storm (or a datapath fault that fails every
//! batch) would otherwise keep eating queue capacity, worker time and
//! client latency budgets on requests that are doomed at dispatch. The
//! breaker watches *consecutive* dispatch failures per model; at the
//! configured threshold it **opens** and admissions fast-fail with the
//! typed [`ServeError::CircuitOpen`] (HTTP 503 + `Retry-After`) without
//! ever queueing. After the backoff it **half-opens**: a bounded number
//! of probe requests are admitted, and the first probe outcome decides —
//! success closes the circuit (resetting the backoff), failure re-opens
//! it with the backoff doubled up to the configured cap.
//!
//! Only dispatch outcomes move the dial: worker panics and inference
//! errors count as failures, completed batches as successes. Sheds,
//! deadline expiries and shutdown rejections are *discards* — the model
//! was never exercised, so they neither trip nor heal the breaker (they
//! only release a held probe slot, so a shed probe cannot wedge the
//! half-open state).
//!
//! [`ServeError::CircuitOpen`]: crate::ServeError::CircuitOpen

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use crate::config::BreakerConfig;

/// The observable position of a breaker's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: admissions flow, consecutive failures are counted.
    Closed,
    /// Tripped: admissions fast-fail until the backoff expires.
    Open,
    /// Probing: a bounded number of requests are admitted; the first
    /// outcome closes or re-opens the circuit.
    HalfOpen,
}

impl BreakerState {
    /// Stable lower-case name (used in health JSON).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// A point-in-time view of one model's breaker, reported by the health
/// surface (`GET /v1/health`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// Current state-machine position.
    pub state: BreakerState,
    /// Consecutive dispatch failures observed (resets on success).
    pub consecutive_failures: u32,
    /// Time until the next probe admission, while open.
    pub retry_in: Option<Duration>,
    /// How many times this circuit has (re-)opened.
    pub opens: u64,
}

#[derive(Debug)]
struct State {
    kind: BreakerState,
    consecutive_failures: u32,
    /// While open: when the circuit half-opens.
    open_until: Instant,
    /// Backoff applied at the *next* (re-)open; doubles on a failed
    /// probe, resets on close.
    backoff: Duration,
    /// Probe admissions outstanding while half-open.
    probes_in_flight: u32,
}

/// Admission verdict from [`CircuitBreaker::try_admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Admit (normally, or as a half-open probe).
    Allowed,
    /// Fast-fail: the circuit is open (or its probe budget is taken).
    Rejected {
        /// Time until the breaker next admits a probe.
        retry_after: Duration,
    },
}

/// One model's circuit breaker. All transitions run under a tiny mutex
/// whose critical sections contain no user code, so it cannot be
/// poisoned by a contained worker panic.
#[derive(Debug)]
pub(crate) struct CircuitBreaker {
    cfg: BreakerConfig,
    state: Mutex<State>,
    opens: AtomicU64,
}

impl CircuitBreaker {
    pub(crate) fn new(cfg: BreakerConfig) -> Self {
        let backoff = cfg.backoff;
        CircuitBreaker {
            cfg,
            state: Mutex::new(State {
                kind: BreakerState::Closed,
                consecutive_failures: 0,
                open_until: Instant::now(),
                backoff,
                probes_in_flight: 0,
            }),
            opens: AtomicU64::new(0),
        }
    }

    /// Admission check, called once per `submit` before any queueing.
    pub(crate) fn try_admit(&self, now: Instant) -> Admission {
        let mut s = self.state.lock().expect("breaker poisoned");
        if s.kind == BreakerState::Open {
            if now < s.open_until {
                return Admission::Rejected { retry_after: s.open_until - now };
            }
            // Backoff served: half-open and let probes through.
            s.kind = BreakerState::HalfOpen;
            s.probes_in_flight = 0;
        }
        if s.kind == BreakerState::HalfOpen {
            if s.probes_in_flight < self.cfg.probes {
                s.probes_in_flight += 1;
                return Admission::Allowed;
            }
            // Probe budget taken; the outstanding probe's outcome is the
            // earliest the state can change, so quote the base backoff.
            return Admission::Rejected { retry_after: self.cfg.backoff };
        }
        Admission::Allowed
    }

    /// A dispatch for this model completed: the model demonstrably
    /// serves, so any state collapses back to closed and the backoff
    /// resets.
    pub(crate) fn record_success(&self) {
        let mut s = self.state.lock().expect("breaker poisoned");
        s.kind = BreakerState::Closed;
        s.consecutive_failures = 0;
        s.backoff = self.cfg.backoff;
        s.probes_in_flight = 0;
    }

    /// A dispatch for this model failed (worker panic or inference
    /// error). Returns whether this failure (re-)opened the circuit, so
    /// the caller can count opens exactly once.
    pub(crate) fn record_failure(&self, now: Instant) -> bool {
        let mut s = self.state.lock().expect("breaker poisoned");
        s.consecutive_failures = s.consecutive_failures.saturating_add(1);
        let opened = match s.kind {
            BreakerState::Closed => {
                if s.consecutive_failures >= self.cfg.threshold {
                    s.kind = BreakerState::Open;
                    s.open_until = now + s.backoff;
                    true
                } else {
                    false
                }
            }
            // Backlog admitted before the trip keeps failing: stay open
            // without extending the deadline (the backlog is history, not
            // new evidence about recovery time).
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                // The probe failed: re-open, backoff doubled and capped.
                s.backoff = (s.backoff * 2).min(self.cfg.backoff_max);
                s.kind = BreakerState::Open;
                s.open_until = now + s.backoff;
                s.probes_in_flight = 0;
                true
            }
        };
        if opened {
            self.opens.fetch_add(1, Ordering::Relaxed);
        }
        opened
    }

    /// A request left the tier without a dispatch outcome (shed at its
    /// deadline, or rejected by the shutdown drain): release its probe
    /// slot, judge nothing.
    pub(crate) fn record_discarded(&self) {
        let mut s = self.state.lock().expect("breaker poisoned");
        if s.kind == BreakerState::HalfOpen && s.probes_in_flight > 0 {
            s.probes_in_flight -= 1;
        }
    }

    /// Point-in-time view for the health surface.
    pub(crate) fn snapshot(&self, now: Instant) -> BreakerSnapshot {
        let s = self.state.lock().expect("breaker poisoned");
        BreakerSnapshot {
            state: s.kind,
            consecutive_failures: s.consecutive_failures,
            retry_in: (s.kind == BreakerState::Open && s.open_until > now)
                .then(|| s.open_until - now),
            opens: self.opens.load(Ordering::Relaxed),
        }
    }
}

/// The server's name → breaker map, created lazily per model on first
/// admission (mirroring the per-model metrics map).
#[derive(Debug)]
pub(crate) struct BreakerBoard {
    cfg: BreakerConfig,
    breakers: RwLock<HashMap<String, Arc<CircuitBreaker>>>,
}

impl BreakerBoard {
    pub(crate) fn new(cfg: BreakerConfig) -> Self {
        BreakerBoard { cfg, breakers: RwLock::new(HashMap::new()) }
    }

    /// The breaker for `name`, created closed on first use.
    pub(crate) fn get(&self, name: &str) -> Arc<CircuitBreaker> {
        if let Some(b) = self.breakers.read().expect("breakers poisoned").get(name) {
            return Arc::clone(b);
        }
        let mut map = self.breakers.write().expect("breakers poisoned");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(CircuitBreaker::new(self.cfg.clone()))),
        )
    }

    /// Every model's breaker snapshot, sorted by name (health surface).
    pub(crate) fn snapshot(&self, now: Instant) -> Vec<(String, BreakerSnapshot)> {
        let map = self.breakers.read().expect("breakers poisoned");
        let mut out: Vec<(String, BreakerSnapshot)> =
            map.iter().map(|(name, b)| (name.clone(), b.snapshot(now))).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            threshold: 3,
            backoff: Duration::from_millis(100),
            backoff_max: Duration::from_millis(350),
            probes: 1,
        }
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        assert_eq!(b.try_admit(t0), Admission::Allowed);
        assert!(!b.record_failure(t0));
        assert!(!b.record_failure(t0));
        // A success resets the streak: failures must be *consecutive*.
        b.record_success();
        assert!(!b.record_failure(t0));
        assert!(!b.record_failure(t0));
        assert!(b.record_failure(t0), "third consecutive failure must open");
        match b.try_admit(t0) {
            Admission::Rejected { retry_after } => {
                assert!(retry_after <= Duration::from_millis(100));
                assert!(retry_after > Duration::ZERO);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        let snap = b.snapshot(t0);
        assert_eq!(snap.state, BreakerState::Open);
        assert_eq!(snap.opens, 1);
        assert!(snap.retry_in.is_some());
    }

    #[test]
    fn half_open_probe_success_closes_and_resets_backoff() {
        let b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.record_failure(t0);
        }
        // Past the backoff the circuit half-opens and admits one probe.
        let t1 = t0 + Duration::from_millis(101);
        assert_eq!(b.try_admit(t1), Admission::Allowed);
        assert_eq!(b.snapshot(t1).state, BreakerState::HalfOpen);
        // The probe budget (1) is taken: a second admission fast-fails.
        assert!(matches!(b.try_admit(t1), Admission::Rejected { .. }));
        b.record_success();
        let snap = b.snapshot(t1);
        assert_eq!(snap.state, BreakerState::Closed);
        assert_eq!(snap.consecutive_failures, 0);
        assert_eq!(b.try_admit(t1), Admission::Allowed);
    }

    #[test]
    fn failed_probe_reopens_with_doubled_capped_backoff() {
        let b = CircuitBreaker::new(cfg());
        let mut now = Instant::now();
        for _ in 0..3 {
            b.record_failure(now);
        }
        // Trip 1: backoff 100ms. Fail the probe → 200ms, then → 350ms
        // (capped below 400ms).
        for expect_ms in [200u64, 350, 350] {
            now += Duration::from_millis(500);
            assert_eq!(b.try_admit(now), Admission::Allowed, "probe must be admitted");
            assert!(b.record_failure(now), "failed probe must re-open");
            let retry = match b.try_admit(now) {
                Admission::Rejected { retry_after } => retry_after,
                other => panic!("expected rejection, got {other:?}"),
            };
            assert!(
                retry <= Duration::from_millis(expect_ms)
                    && retry > Duration::from_millis(expect_ms - 50),
                "expected ~{expect_ms}ms backoff, got {retry:?}"
            );
        }
        assert_eq!(b.snapshot(now).opens, 4);
    }

    #[test]
    fn discard_releases_a_probe_slot_instead_of_wedging() {
        let b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.record_failure(t0);
        }
        let t1 = t0 + Duration::from_millis(101);
        assert_eq!(b.try_admit(t1), Admission::Allowed);
        // The probe is shed before dispatch: without the discard the
        // half-open state would reject probes forever.
        assert!(matches!(b.try_admit(t1), Admission::Rejected { .. }));
        b.record_discarded();
        assert_eq!(b.try_admit(t1), Admission::Allowed);
    }

    #[test]
    fn failures_while_open_do_not_extend_the_deadline() {
        let b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.record_failure(t0);
        }
        // Backlog failures land while open.
        assert!(!b.record_failure(t0 + Duration::from_millis(50)));
        // The original deadline still half-opens on time.
        assert_eq!(b.try_admit(t0 + Duration::from_millis(101)), Admission::Allowed);
    }

    #[test]
    fn board_creates_lazily_and_snapshots_sorted() {
        let board = BreakerBoard::new(cfg());
        let b1 = board.get("zeta");
        let b2 = board.get("alpha");
        assert!(Arc::ptr_eq(&board.get("zeta"), &b1));
        b2.record_failure(Instant::now());
        let snap = board.snapshot(Instant::now());
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "alpha");
        assert_eq!(snap[0].1.consecutive_failures, 1);
        assert_eq!(snap[1].0, "zeta");
        assert_eq!(snap[1].1.state, BreakerState::Closed);
    }
}
