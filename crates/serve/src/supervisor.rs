//! The server's supervisor thread: worker watchdog + adaptive
//! degradation controller.
//!
//! One background thread per server ticks every
//! [`ServeConfig::supervise_interval`]. Each tick does two things:
//!
//! 1. **Watchdog** — [`Shard::supervise`] on every shard: workers whose
//!    thread died (outside the per-dispatch panic containment) or whose
//!    heartbeat went stale past [`ServeConfig::hang_timeout`] are
//!    replaced crash-only and counted in the `respawns` metric.
//! 2. **Degradation control** — with [`ServeConfig::degrade`] set, the
//!    controller differences the queue-wait histogram against the
//!    previous tick and estimates the p95 wait *of that tick alone*.
//!    Above the target it raises the degrade level (workers trim one
//!    more ensemble member); it lowers the level only after
//!    [`DegradeConfig::release_ticks`] consecutive calm ticks (p95 under
//!    half the target, or no traffic), so the level is hysteretic —
//!    oscillating load cannot flap it every tick.
//!
//! The supervisor must be stopped before the queues close (the server
//! does this in every shutdown path); otherwise the watchdog would
//! respawn the very workers a shutdown is joining.
//!
//! [`ServeConfig::supervise_interval`]: crate::ServeConfig::supervise_interval
//! [`ServeConfig::hang_timeout`]: crate::ServeConfig::hang_timeout
//! [`ServeConfig::degrade`]: crate::ServeConfig::degrade
//! [`DegradeConfig::release_ticks`]: crate::DegradeConfig::release_ticks
//! [`Shard::supervise`]: crate::shard::Shard::supervise

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::config::{DegradeConfig, ServeConfig};
use crate::metrics::{percentile_upper_bound, ServerMetrics};
use crate::shard::Shard;

/// Ceiling on the degrade level: far above any real ensemble width, it
/// bounds how long hysteretic release can take after a long overload
/// (the dispatch path independently clamps per model anyway).
const MAX_LEVEL: u64 = 32;

/// Handle to the supervisor thread; stopping is idempotent and `Drop`
/// stops it as a last resort.
pub(crate) struct Supervisor {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Supervisor {
    /// Spawns the supervisor over clones of the server's shards.
    pub(crate) fn start(
        shards: Vec<Shard>,
        metrics: Arc<ServerMetrics>,
        cfg: ServeConfig,
    ) -> Supervisor {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("mfdfp-serve-supervisor".into())
            .spawn(move || supervise_loop(&shards, &metrics, &cfg, &thread_stop))
            .expect("failed to spawn supervisor");
        Supervisor { stop, handle: Some(handle) }
    }

    /// Signals the thread and joins it (idempotent).
    pub(crate) fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop();
    }
}

fn supervise_loop(
    shards: &[Shard],
    metrics: &Arc<ServerMetrics>,
    cfg: &ServeConfig,
    stop: &AtomicBool,
) {
    let mut controller = cfg.degrade.clone().map(DegradeController::new);
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(cfg.supervise_interval);
        for shard in shards {
            shard.supervise(metrics, cfg);
        }
        if let Some(controller) = &mut controller {
            controller.tick(metrics);
        }
    }
}

/// The hysteretic degrade-level controller (one per supervisor; all
/// state is private to the control thread — workers only see the level
/// gauge it publishes into [`ServerMetrics`]).
struct DegradeController {
    cfg: DegradeConfig,
    /// Cumulative queue-wait buckets at the previous tick.
    last_buckets: Vec<u64>,
    level: u64,
    calm_ticks: u32,
}

impl DegradeController {
    fn new(cfg: DegradeConfig) -> Self {
        DegradeController { cfg, last_buckets: Vec::new(), level: 0, calm_ticks: 0 }
    }

    /// One control tick: estimate this tick's queue-wait p95 from the
    /// histogram delta and move the level at most one step.
    fn tick(&mut self, metrics: &ServerMetrics) {
        let now_buckets = metrics.queue_wait_bucket_counts();
        let delta: Vec<u64> = if self.last_buckets.is_empty() {
            now_buckets.clone()
        } else {
            now_buckets.iter().zip(&self.last_buckets).map(|(a, b)| a.saturating_sub(*b)).collect()
        };
        self.last_buckets = now_buckets;
        let samples: u64 = delta.iter().sum();
        let target_us = self.cfg.target_p95.as_micros() as f64;
        let p95_us = percentile_upper_bound(&delta, 0.95);
        if samples > 0 && p95_us > target_us {
            // Overloaded: degrade one more step.
            self.calm_ticks = 0;
            if self.level < MAX_LEVEL {
                self.level += 1;
                metrics.set_degrade_level(self.level);
            }
        } else if samples == 0 || p95_us < target_us / 2.0 {
            // Calm: release one step only after `release_ticks` of it.
            if self.level > 0 {
                self.calm_ticks += 1;
                if self.calm_ticks >= self.cfg.release_ticks {
                    self.calm_ticks = 0;
                    self.level -= 1;
                    metrics.set_degrade_level(self.level);
                }
            }
        } else {
            // Between half-target and target: hold the level and restart
            // the calm streak (the hysteresis band).
            self.calm_ticks = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn controller() -> DegradeController {
        DegradeController::new(DegradeConfig {
            target_p95: Duration::from_micros(1000),
            release_ticks: 2,
        })
    }

    /// Record `n` queue waits of `us` microseconds.
    fn waits(m: &ServerMetrics, n: usize, us: u64) {
        for _ in 0..n {
            m.record_queue_wait(Duration::from_micros(us));
        }
    }

    #[test]
    fn engages_holds_and_releases_hysteretically() {
        let m = ServerMetrics::new(1);
        let mut c = controller();
        // No traffic, level 0: nothing to do.
        c.tick(&m);
        assert_eq!(m.degrade_level(), 0);
        // Two overloaded ticks (p95 ~10ms over a 1ms target): one step
        // each.
        waits(&m, 10, 10_000);
        c.tick(&m);
        assert_eq!(m.degrade_level(), 1);
        waits(&m, 10, 10_000);
        c.tick(&m);
        assert_eq!(m.degrade_level(), 2);
        // The hysteresis band (~300µs → bucket bound 512µs, between
        // target/2 and target): hold, and restart any calm streak.
        waits(&m, 10, 300);
        c.tick(&m);
        assert_eq!(m.degrade_level(), 2);
        // Calm ticks (fast waits and idle both count): release one step
        // per `release_ticks`.
        waits(&m, 10, 100);
        c.tick(&m);
        assert_eq!(m.degrade_level(), 2, "first calm tick must not release yet");
        c.tick(&m); // idle tick
        assert_eq!(m.degrade_level(), 1);
        c.tick(&m);
        c.tick(&m);
        assert_eq!(m.degrade_level(), 0);
        // Already at zero: calm ticks are a no-op.
        c.tick(&m);
        assert_eq!(m.degrade_level(), 0);
    }

    #[test]
    fn mid_band_traffic_resets_the_calm_streak() {
        let m = ServerMetrics::new(1);
        let mut c = controller();
        waits(&m, 10, 10_000);
        c.tick(&m);
        assert_eq!(m.degrade_level(), 1);
        // calm, band, calm, calm: the band tick must break the streak so
        // release needs two *consecutive* calm ticks after it.
        waits(&m, 10, 100);
        c.tick(&m);
        waits(&m, 10, 300);
        c.tick(&m);
        waits(&m, 10, 100);
        c.tick(&m);
        assert_eq!(m.degrade_level(), 1, "streak was reset by the band tick");
        c.tick(&m);
        assert_eq!(m.degrade_level(), 0);
    }

    #[test]
    fn level_is_capped() {
        let m = ServerMetrics::new(1);
        let mut c = controller();
        for _ in 0..(MAX_LEVEL + 10) {
            waits(&m, 5, 50_000);
            c.tick(&m);
        }
        assert_eq!(m.degrade_level(), MAX_LEVEL);
    }

    #[test]
    fn first_tick_uses_the_full_histogram_as_its_delta() {
        // Waits recorded before the controller's first tick still count
        // (the controller starts with an empty baseline).
        let m = ServerMetrics::new(1);
        waits(&m, 10, 10_000);
        let mut c = controller();
        c.tick(&m);
        assert_eq!(m.degrade_level(), 1);
    }
}
