//! Error type for the serving runtime.

use std::error::Error;
use std::fmt;

use mfdfp_core::CoreError;

/// Errors surfaced to serving clients.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request queue is at capacity; the request was rejected at
    /// admission (backpressure). Clients should retry after a delay.
    QueueFull {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The server is shut down (or shutting down) and accepts no new work.
    Closed,
    /// No model with the requested name is registered.
    UnknownModel(String),
    /// The request's input element count does not match the model.
    BadInput {
        /// The model the request addressed.
        model: String,
        /// Elements the model's first layer expects.
        expected: usize,
        /// Elements the request supplied.
        actual: usize,
    },
    /// Invalid server configuration.
    BadConfig(String),
    /// The quantized datapath faulted while serving the request.
    Inference(CoreError),
    /// The model's per-model admission quota is exhausted: the model
    /// already has `quota` requests in flight. Like
    /// [`ServeError::QueueFull`] this is backpressure, scoped to one
    /// model so a single hot model cannot starve the others.
    QuotaExceeded {
        /// The model whose quota was exhausted.
        model: String,
        /// The configured per-model in-flight quota.
        quota: u64,
    },
    /// The request's deadline expired before inference started; the
    /// batcher shed it instead of wasting datapath time on an answer the
    /// client has already given up on. Counted in the `shed` metrics.
    DeadlineExceeded {
        /// The model the request addressed.
        model: String,
    },
    /// A worker panicked while dispatching the batch holding this
    /// request. The panic was contained (the worker thread survives and
    /// no lock is poisoned); the batch is answered with this typed error.
    WorkerPanic,
    /// The model's circuit breaker is open after consecutive dispatch
    /// failures: the request fast-fails at admission without queueing,
    /// shielding the tier while the model recovers. Retry after
    /// `retry_after` (surfaced as HTTP 503 + `Retry-After`).
    CircuitOpen {
        /// The model whose circuit is open.
        model: String,
        /// How long until the breaker next admits a probe.
        retry_after: std::time::Duration,
    },
    /// The server's bounded drain deadline passed while this request was
    /// still queued; it was rejected instead of holding shutdown hostage.
    ShuttingDown,
    /// A socket-level fault in the HTTP front-end (bind/accept/read).
    Io(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            ServeError::Closed => write!(f, "server is shut down"),
            ServeError::UnknownModel(name) => write!(f, "no model named {name:?} is registered"),
            ServeError::BadInput { model, expected, actual } => {
                write!(f, "model {model:?} expects {expected} input elements, got {actual}")
            }
            ServeError::BadConfig(msg) => write!(f, "invalid serving configuration: {msg}"),
            ServeError::Inference(e) => write!(f, "inference failed: {e}"),
            ServeError::QuotaExceeded { model, quota } => {
                write!(f, "model {model:?} is at its in-flight quota ({quota})")
            }
            ServeError::DeadlineExceeded { model } => {
                write!(f, "request for model {model:?} shed: deadline expired before inference")
            }
            ServeError::WorkerPanic => {
                write!(f, "a serving worker panicked while dispatching this batch")
            }
            ServeError::CircuitOpen { model, retry_after } => {
                write!(
                    f,
                    "circuit for model {model:?} is open; retry in {:.3}s",
                    retry_after.as_secs_f64()
                )
            }
            ServeError::ShuttingDown => {
                write!(f, "server is draining down; request rejected at the drain deadline")
            }
            ServeError::Io(msg) => write!(f, "http i/o error: {msg}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Inference(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Inference(e)
    }
}

/// Convenience alias for serving results.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = ServeError::QueueFull { capacity: 8 };
        assert!(e.to_string().contains("capacity 8"));
        assert!(Error::source(&e).is_none());
        let inf = ServeError::from(CoreError::BadConfig("x".into()));
        assert!(inf.to_string().contains("inference failed"));
        assert!(Error::source(&inf).is_some());
        assert!(ServeError::UnknownModel("m".into()).to_string().contains("\"m\""));
    }
}
