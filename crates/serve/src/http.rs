//! `std`-only HTTP/1.1 front-end for the serving tier.
//!
//! No async runtime and no HTTP dependency: a thread-per-connection
//! acceptor feeds a hand-rolled request parser with strict size limits,
//! and every request funnels into the same sharded
//! [`Server`] admission path the in-process API uses. The parser is a
//! pure function over a byte buffer ([`parse_request`]), which is what
//! makes it property-testable: arbitrary bytes must never panic it, and
//! any malformed, oversized or truncated input must map to a typed
//! [`HttpParseError`] with a concrete 4xx/5xx status.
//!
//! Routes:
//!
//! * `POST /v1/infer/<model>` — body is a strict JSON array of finite
//!   f32 values (the flattened image). Optional headers:
//!   `x-mfdfp-deadline-us` (shed budget in microseconds, see
//!   [`SubmitOptions::deadline`]) and `x-mfdfp-priority: high` (the
//!   latency lane, see [`Priority`]). Answers
//!   `{"model","version","class","batch_size","latency_us","logits"}`;
//!   logits are formatted with Rust's shortest round-trip repr, so the
//!   decoded values are **bit-identical** to the served logits.
//! * `GET /v1/metrics` — the full [`MetricsSnapshot`] JSON document.
//! * `GET /v1/models` — registered names with their current versions.
//! * `GET /v1/health` — the self-healing surface
//!   ([`HealthSnapshot`](crate::HealthSnapshot) JSON): per-shard worker
//!   heartbeat ages and queue depths, per-model breaker states, the
//!   degradation level and the respawn count.
//! * `GET /v1/ready` — the readiness bit alone; `200` while every shard
//!   has a fresh-heartbeat worker, `503` otherwise.
//!
//! Serving errors map to statuses: unknown model → 404, bad input →
//! 400, queue/quota backpressure → 429, deadline shed → 504, shutdown /
//! drain rejection → 503, open circuit → 503 with a `Retry-After`
//! header, worker panic or datapath fault → 500. A degraded (truncated
//! ensemble) answer carries `x-mfdfp-degraded: 1` and `"degraded":true`.
//!
//! Keep-alive connections are reaped: a connection that completes no
//! request for [`HttpConfig::idle_timeout`] is answered `408` and
//! closed (counted in the `http_idle_closed` metric). The per-read
//! slice is `min(read_timeout, time-to-idle-deadline)`, so a slow-loris
//! client dripping bytes is held to the same deadline as a silent one.
//!
//! [`MetricsSnapshot`]: crate::MetricsSnapshot

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::config::HttpConfig;
use crate::error::{Result, ServeError};
use crate::server::{Priority, Server, SubmitOptions};

/// A fully parsed HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, as sent (e.g. `GET`, `POST`).
    pub method: String,
    /// Request target (path), as sent.
    pub path: String,
    /// Headers in arrival order; names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw request body (`Content-Length` bytes).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default yes, HTTP/1.0 default no, `Connection` header
    /// overrides either way).
    pub keep_alive: bool,
}

impl HttpRequest {
    /// First value of header `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request failed to parse. Every variant maps to a concrete
/// response status ([`HttpParseError::status`]); none of them can
/// panic the connection thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpParseError {
    /// The request head (request line + headers) exceeded
    /// [`HttpConfig::max_head_bytes`] → `431`.
    HeadTooLarge {
        /// The configured head limit that was exceeded.
        limit: usize,
    },
    /// The declared `Content-Length` exceeded
    /// [`HttpConfig::max_body_bytes`] → `413`. Rejected from the
    /// declaration alone — the body is never read.
    BodyTooLarge {
        /// The declared body length.
        length: usize,
        /// The configured body limit it exceeded.
        limit: usize,
    },
    /// The request line is malformed (not `METHOD SP TARGET SP VERSION`,
    /// or not ASCII) → `400`.
    BadRequestLine,
    /// A header line is malformed (no colon, empty or non-token name,
    /// or not valid UTF-8) → `400`.
    BadHeader,
    /// The HTTP version is not `HTTP/1.1` or `HTTP/1.0` → `505`.
    BadVersion,
    /// A method that carries a body (`POST`/`PUT`) arrived without a
    /// `Content-Length` header → `411`.
    LengthRequired,
    /// A `Transfer-Encoding` header was present; chunked bodies are not
    /// supported → `501`.
    UnsupportedTransferEncoding,
}

impl HttpParseError {
    /// The response status this parse failure maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpParseError::HeadTooLarge { .. } => 431,
            HttpParseError::BodyTooLarge { .. } => 413,
            HttpParseError::BadRequestLine | HttpParseError::BadHeader => 400,
            HttpParseError::BadVersion => 505,
            HttpParseError::LengthRequired => 411,
            HttpParseError::UnsupportedTransferEncoding => 501,
        }
    }
}

impl std::fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpParseError::HeadTooLarge { limit } => {
                write!(f, "request head exceeds {limit} bytes")
            }
            HttpParseError::BodyTooLarge { length, limit } => {
                write!(f, "declared body of {length} bytes exceeds {limit}-byte limit")
            }
            HttpParseError::BadRequestLine => write!(f, "malformed request line"),
            HttpParseError::BadHeader => write!(f, "malformed header line"),
            HttpParseError::BadVersion => write!(f, "unsupported http version"),
            HttpParseError::LengthRequired => write!(f, "content-length required"),
            HttpParseError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding is not supported")
            }
        }
    }
}

impl std::error::Error for HttpParseError {}

/// Incremental parse of one HTTP/1.1 request from the front of `buf`.
///
/// Pure function — no I/O, no allocation proportional to anything but
/// the (limit-bounded) input. Returns:
///
/// * `Ok(Some((request, consumed)))` — a complete request occupies
///   `buf[..consumed]`;
/// * `Ok(None)` — the bytes so far are a valid *prefix*; read more and
///   call again (the caller's buffering stays bounded because the head
///   limit is enforced on the unterminated prefix and the body limit on
///   the declared length);
/// * `Err(e)` — the input can never become a valid request; answer
///   [`HttpParseError::status`] and close.
///
/// # Errors
///
/// See [`HttpParseError`]. Arbitrary input never panics (property-tested
/// in `tests/properties.rs`).
pub fn parse_request(
    buf: &[u8],
    config: &HttpConfig,
) -> std::result::Result<Option<(HttpRequest, usize)>, HttpParseError> {
    let head_end = match find_head_end(buf) {
        Some(end) => {
            if end > config.max_head_bytes {
                return Err(HttpParseError::HeadTooLarge { limit: config.max_head_bytes });
            }
            end
        }
        None => {
            // No terminator yet: a prefix longer than the head limit can
            // never terminate legally, so reject it now instead of
            // buffering a hostile endless head.
            if buf.len() > config.max_head_bytes {
                return Err(HttpParseError::HeadTooLarge { limit: config.max_head_bytes });
            }
            return Ok(None);
        }
    };
    let head =
        std::str::from_utf8(&buf[..head_end - 4]).map_err(|_| HttpParseError::BadRequestLine)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpParseError::BadRequestLine)?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("");
    let path = parts.next().ok_or(HttpParseError::BadRequestLine)?;
    let version = parts.next().ok_or(HttpParseError::BadRequestLine)?;
    if parts.next().is_some() || method.is_empty() || !is_token(method) || !path.starts_with('/') {
        return Err(HttpParseError::BadRequestLine);
    }
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpParseError::BadVersion),
    };
    let mut headers = Vec::new();
    for line in lines {
        // An embedded CR or LF cannot survive the split, and the blank
        // terminator line was excluded with the `- 4`; every remaining
        // line must be `name ":" value`.
        let (name, value) = line.split_once(':').ok_or(HttpParseError::BadHeader)?;
        if name.is_empty() || !is_token(name) {
            return Err(HttpParseError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    let request = HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
        keep_alive: keep_alive_default,
    };
    if request.header("transfer-encoding").is_some() {
        return Err(HttpParseError::UnsupportedTransferEncoding);
    }
    let content_length = match request.header("content-length") {
        Some(v) => v.parse::<usize>().map_err(|_| HttpParseError::BadHeader)?,
        None if matches!(method, "POST" | "PUT") => return Err(HttpParseError::LengthRequired),
        None => 0,
    };
    if content_length > config.max_body_bytes {
        return Err(HttpParseError::BodyTooLarge {
            length: content_length,
            limit: config.max_body_bytes,
        });
    }
    let total = head_end + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let keep_alive = match request.header("connection").map(str::to_ascii_lowercase) {
        Some(v) if v == "close" => false,
        Some(v) if v == "keep-alive" => true,
        _ => request.keep_alive,
    };
    let body = buf[head_end..total].to_vec();
    Ok(Some((HttpRequest { body, keep_alive, ..request }, total)))
}

/// Index one past the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|pos| pos + 4)
}

/// RFC 7230 `token` characters (method and header names).
fn is_token(s: &str) -> bool {
    s.bytes().all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
}

/// Serialises a request the way [`parse_request`] expects it — the
/// round-trip partner the property tests (and the bench client) use.
/// A `Content-Length` header is added automatically when `body` is
/// non-empty or the method carries a body.
pub fn encode_request(method: &str, path: &str, headers: &[(&str, &str)], body: &[u8]) -> Vec<u8> {
    let mut out = format!("{method} {path} HTTP/1.1\r\n").into_bytes();
    for (name, value) in headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    if !body.is_empty() || matches!(method, "POST" | "PUT") {
        out.extend_from_slice(format!("content-length: {}\r\n", body.len()).as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// Strict parse of a JSON array of finite f32 values (the body format of
/// `POST /v1/infer/<model>`): `[`, comma-separated numbers, `]`,
/// surrounded by optional ASCII whitespace and nothing else. `NaN`,
/// infinities, JSON extensions and trailing garbage are rejected — a
/// poison body must become a typed `400`, never a NaN that silently
/// corrupts a whole coalesced batch.
///
/// # Errors
///
/// A human-readable description of the first offence.
pub fn parse_f32_array(body: &[u8]) -> std::result::Result<Vec<f32>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    let text = text.trim();
    let inner = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| "body must be a JSON array of numbers".to_string())?
        .trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    let mut values = Vec::new();
    for (i, token) in inner.split(',').enumerate() {
        let token = token.trim();
        let value: f32 =
            token.parse().map_err(|_| format!("element {i} ({token:?}) is not a number"))?;
        if !value.is_finite() {
            return Err(format!("element {i} is not finite"));
        }
        values.push(value);
    }
    Ok(values)
}

/// Formats f32 values as a JSON array using Rust's shortest
/// round-trip (`{:?}`) repr: parsing a formatted value back yields
/// **bit-identical** f32s, which is what lets the HTTP tests assert
/// served logits equal direct datapath logits exactly.
pub fn format_f32_array(values: &[f32]) -> String {
    let mut out = String::with_capacity(2 + values.len() * 8);
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{v:?}"));
    }
    out.push(']');
    out
}

/// Minimal JSON string escaping for error messages.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The status a serving error maps to at the HTTP boundary.
fn status_for(err: &ServeError) -> (u16, &'static str) {
    match err {
        ServeError::UnknownModel(_) => (404, "Not Found"),
        ServeError::BadInput { .. } => (400, "Bad Request"),
        ServeError::QueueFull { .. } | ServeError::QuotaExceeded { .. } => {
            (429, "Too Many Requests")
        }
        ServeError::DeadlineExceeded { .. } => (504, "Gateway Timeout"),
        ServeError::Closed | ServeError::CircuitOpen { .. } | ServeError::ShuttingDown => {
            (503, "Service Unavailable")
        }
        ServeError::WorkerPanic
        | ServeError::Inference(_)
        | ServeError::BadConfig(_)
        | ServeError::Io(_) => (500, "Internal Server Error"),
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Internal Server Error",
    }
}

/// One response, ready to write.
struct Reply {
    status: u16,
    body: String,
    keep_alive: bool,
    /// Extra response headers (`Retry-After`, `x-mfdfp-degraded`);
    /// names must already be valid header tokens.
    headers: Vec<(&'static str, String)>,
}

impl Reply {
    fn json(status: u16, body: String, keep_alive: bool) -> Reply {
        Reply { status, body, keep_alive, headers: Vec::new() }
    }

    fn error(status: u16, message: &str, keep_alive: bool) -> Reply {
        Reply {
            status,
            body: format!("{{\"error\":\"{}\"}}", json_escape(message)),
            keep_alive,
            headers: Vec::new(),
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            reason(self.status),
            self.body.len(),
            if self.keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// The network front-end: a listener + acceptor thread wrapping an
/// in-process [`Server`].
///
/// Each accepted connection gets its own handler thread (bounded by
/// [`HttpConfig::max_connections`] — the acceptor answers `503` beyond
/// that, load shedding at the edge); handlers parse with
/// [`parse_request`], route into [`Server::submit_with`], and keep the
/// connection alive per HTTP/1.1 semantics. Dropping (or
/// [`HttpServer::shutdown`]) stops the acceptor; the wrapped `Server`'s
/// own lifecycle is independent.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// spawns the acceptor.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadConfig`] for invalid limits, [`ServeError::Io`]
    /// if the bind fails.
    pub fn bind(server: Arc<Server>, addr: &str, config: HttpConfig) -> Result<HttpServer> {
        config.validate()?;
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Io(e.to_string()))?;
        let addr = listener.local_addr().map_err(|e| ServeError::Io(e.to_string()))?;
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let config = config.clone();
            std::thread::Builder::new()
                .name("mfdfp-http-accept".into())
                .spawn(move || accept_loop(&listener, &server, &config, &stop))
                .map_err(|e| ServeError::Io(e.to_string()))?
        };
        Ok(HttpServer { addr, stop, acceptor: Some(acceptor) })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the acceptor. Connections
    /// already being handled finish their current request (their handler
    /// threads exit on close or read-timeout).
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept() with one throwaway
        // connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Releases one connection slot on drop, so a panicking handler can
/// never leak capacity.
struct ConnectionSlot(Arc<AtomicUsize>);

impl Drop for ConnectionSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(
    listener: &TcpListener,
    server: &Arc<Server>,
    config: &HttpConfig,
    stop: &AtomicBool,
) {
    let active = Arc::new(AtomicUsize::new(0));
    loop {
        let accepted_from = mfdfp_obs::now_ns();
        let accepted = listener.accept();
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok((mut stream, _peer)) = accepted else {
            continue;
        };
        mfdfp_obs::record_complete(
            "serve.accept",
            active.load(Ordering::SeqCst) as u64,
            accepted_from,
            mfdfp_obs::now_ns(),
        );
        // Edge load shedding: beyond the connection cap, answer 503
        // immediately instead of queueing a handler thread.
        let claimed = active
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < config.max_connections).then_some(n + 1)
            })
            .is_ok();
        if !claimed {
            let _ = Reply::error(503, "connection limit reached", false).write_to(&mut stream);
            continue;
        }
        let slot = ConnectionSlot(Arc::clone(&active));
        let server = Arc::clone(server);
        let config = config.clone();
        let spawned = std::thread::Builder::new()
            .name("mfdfp-http-conn".into())
            .spawn(move || handle_connection(stream, &server, &config, slot));
        if spawned.is_err() {
            // Slot already released by the moved guard's drop inside the
            // failed spawn; nothing else to clean up.
            continue;
        }
    }
}

/// Serves one connection: buffered incremental parse, dispatch, response,
/// keep-alive loop. Exits on close, parse error, the idle deadline or an
/// I/O fault; the [`ConnectionSlot`] releases capacity on every exit
/// path.
///
/// The idle deadline is connection start (or the last *complete*
/// response) + [`HttpConfig::idle_timeout`]; each read blocks for at
/// most `min(read_timeout, time to the deadline)`, so both a silent
/// keep-alive connection and a slow-loris drip-feed are answered `408`
/// and closed at the same deadline (counted in `http_idle_closed`).
fn handle_connection(
    mut stream: TcpStream,
    server: &Arc<Server>,
    config: &HttpConfig,
    _slot: ConnectionSlot,
) {
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let mut idle_deadline = Instant::now() + config.idle_timeout;
    loop {
        let parse_from = mfdfp_obs::now_ns();
        let parsed = parse_request(&buf, config);
        mfdfp_obs::record_complete(
            "serve.http_parse",
            buf.len() as u64,
            parse_from,
            mfdfp_obs::now_ns(),
        );
        match parsed {
            Ok(Some((request, consumed))) => {
                buf.drain(..consumed);
                let reply = route(server, &request);
                let keep_alive = reply.keep_alive;
                if reply.write_to(&mut stream).is_err() || !keep_alive {
                    return;
                }
                idle_deadline = Instant::now() + config.idle_timeout;
            }
            Ok(None) => {
                let now = Instant::now();
                if now >= idle_deadline {
                    server.metrics_inner().record_http_idle_closed();
                    let _ =
                        Reply::error(408, "connection idle timeout", false).write_to(&mut stream);
                    return;
                }
                let slice = config.read_timeout.min(idle_deadline - now);
                let _ = stream.set_read_timeout(Some(slice.max(Duration::from_millis(1))));
                match stream.read(&mut chunk) {
                    Ok(0) => return,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        // Read slice expired inside the idle window: loop
                        // so the deadline check above decides.
                    }
                    Err(_) => return,
                }
            }
            Err(e) => {
                let _ = Reply::error(e.status(), &e.to_string(), false).write_to(&mut stream);
                return;
            }
        }
    }
}

/// Maps one parsed request to a reply via the in-process server.
fn route(server: &Arc<Server>, request: &HttpRequest) -> Reply {
    let keep_alive = request.keep_alive;
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/metrics") => Reply::json(200, server.metrics().to_json(), keep_alive),
        ("GET", "/v1/models") => Reply::json(200, models_json(server), keep_alive),
        ("GET", "/v1/health") => Reply::json(200, server.health().to_json(), keep_alive),
        ("GET", "/v1/ready") => {
            let ready = server.ready();
            Reply::json(if ready { 200 } else { 503 }, format!("{{\"ready\":{ready}}}"), keep_alive)
        }
        (method, path) if path.starts_with("/v1/infer/") => {
            let model = &path["/v1/infer/".len()..];
            if model.is_empty() {
                return Reply::error(404, "no model in path", keep_alive);
            }
            if method != "POST" {
                return Reply::error(405, "inference requires POST", keep_alive);
            }
            infer(server, model, request)
        }
        (_, "/v1/metrics" | "/v1/models" | "/v1/health" | "/v1/ready") => {
            Reply::error(405, "use GET on this endpoint", keep_alive)
        }
        _ => Reply::error(404, "unknown route", keep_alive),
    }
}

fn models_json(server: &Arc<Server>) -> String {
    let registry = server.registry();
    let mut out = String::from("{\"models\":[");
    for (i, name) in registry.names().iter().enumerate() {
        // A model may be removed between names() and version(); skip it.
        let Ok(version) = registry.version(name) else { continue };
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"name\":\"{}\",\"version\":{version}}}", json_escape(name)));
    }
    out.push_str("]}");
    out
}

/// `POST /v1/infer/<model>`: body + headers → [`Server::submit_with`] →
/// blocking ticket wait → JSON reply.
fn infer(server: &Arc<Server>, model: &str, request: &HttpRequest) -> Reply {
    let keep_alive = request.keep_alive;
    let image = match parse_f32_array(&request.body) {
        Ok(values) => mfdfp_tensor::Tensor::from_slice(&values),
        Err(msg) => return Reply::error(400, &msg, keep_alive),
    };
    let mut opts = SubmitOptions::default();
    if let Some(value) = request.header("x-mfdfp-deadline-us") {
        match value.parse::<u64>() {
            Ok(us) => opts.deadline = Some(std::time::Duration::from_micros(us)),
            Err(_) => {
                return Reply::error(400, "x-mfdfp-deadline-us must be an integer", keep_alive)
            }
        }
    }
    match request.header("x-mfdfp-priority") {
        None => {}
        Some(v) if v.eq_ignore_ascii_case("high") => opts.priority = Priority::High,
        Some(v) if v.eq_ignore_ascii_case("normal") => {}
        Some(_) => return Reply::error(400, "x-mfdfp-priority must be high or normal", keep_alive),
    }
    let outcome = server.submit_with(model, image, opts).and_then(crate::Ticket::wait);
    match outcome {
        Ok(response) => {
            let mut reply = Reply::json(
                200,
                format!(
                    "{{\"model\":\"{}\",\"version\":{},\"class\":{},\"batch_size\":{},\"latency_us\":{},\"degraded\":{},\"logits\":{}}}",
                    json_escape(&response.model),
                    response.version,
                    response.class,
                    response.batch_size,
                    response.latency.as_micros(),
                    response.degraded,
                    format_f32_array(response.logits.as_slice()),
                ),
                keep_alive,
            );
            if response.degraded {
                reply.headers.push(("x-mfdfp-degraded", "1".to_string()));
            }
            reply
        }
        Err(e) => {
            let (status, _) = status_for(&e);
            let mut reply = Reply::error(status, &e.to_string(), keep_alive);
            if let ServeError::CircuitOpen { retry_after, .. } = &e {
                // Whole seconds, rounded up — `Retry-After: 0` would
                // invite an immediate retry against an open circuit.
                let secs = retry_after.as_secs_f64().ceil().max(1.0) as u64;
                reply.headers.push(("retry-after", secs.to_string()));
            }
            reply
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HttpConfig {
        HttpConfig::default()
    }

    #[test]
    fn parses_a_simple_get() {
        let bytes = b"GET /v1/metrics HTTP/1.1\r\nhost: x\r\n\r\n";
        let (req, consumed) = parse_request(bytes, &cfg()).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/metrics");
        assert_eq!(req.header("Host"), Some("x"));
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn round_trips_encode_parse() {
        let body = b"[1.0,2.5]";
        let bytes = encode_request("POST", "/v1/infer/tiny", &[("x-mfdfp-priority", "high")], body);
        let (req, consumed) = parse_request(&bytes, &cfg()).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/infer/tiny");
        assert_eq!(req.header("x-mfdfp-priority"), Some("high"));
        assert_eq!(req.body, body);
    }

    #[test]
    fn partial_inputs_ask_for_more() {
        let bytes = encode_request("POST", "/v1/infer/t", &[], b"[1.0]");
        for cut in 0..bytes.len() {
            assert_eq!(parse_request(&bytes[..cut], &cfg()).unwrap(), None, "cut at {cut}");
        }
        assert!(parse_request(&bytes, &cfg()).unwrap().is_some());
    }

    #[test]
    fn oversized_head_and_body_are_typed() {
        let small = HttpConfig { max_head_bytes: 32, max_body_bytes: 8, ..HttpConfig::default() };
        let long_head = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64));
        assert!(matches!(
            parse_request(long_head.as_bytes(), &small),
            Err(HttpParseError::HeadTooLarge { limit: 32 })
        ));
        // An unterminated prefix beyond the limit is rejected immediately.
        assert!(matches!(
            parse_request(&[b'A'; 64], &small),
            Err(HttpParseError::HeadTooLarge { .. })
        ));
        // Oversized declared body: rejected from the declaration alone.
        let tight_body = HttpConfig { max_body_bytes: 8, ..HttpConfig::default() };
        let big_body = b"POST /v1/infer/t HTTP/1.1\r\ncontent-length: 999\r\n\r\n";
        assert!(matches!(
            parse_request(big_body, &tight_body),
            Err(HttpParseError::BodyTooLarge { length: 999, limit: 8 })
        ));
    }

    #[test]
    fn malformed_inputs_are_typed_not_panics() {
        let c = cfg();
        assert!(matches!(
            parse_request(b"NOT A REQUEST\r\n\r\n", &c),
            Err(HttpParseError::BadRequestLine)
        ));
        assert!(matches!(
            parse_request(b"GET / HTTP/2.0\r\n\r\n", &c),
            Err(HttpParseError::BadVersion)
        ));
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n", &c),
            Err(HttpParseError::BadHeader)
        ));
        assert!(matches!(
            parse_request(b"POST /x HTTP/1.1\r\n\r\n", &c),
            Err(HttpParseError::LengthRequired)
        ));
        assert!(matches!(
            parse_request(b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n", &c),
            Err(HttpParseError::UnsupportedTransferEncoding)
        ));
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let c = cfg();
        let (req, _) =
            parse_request(b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n", &c).unwrap().unwrap();
        assert!(!req.keep_alive);
        let (req, _) = parse_request(b"GET / HTTP/1.0\r\n\r\n", &c).unwrap().unwrap();
        assert!(!req.keep_alive);
        let (req, _) = parse_request(b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n", &c)
            .unwrap()
            .unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn f32_array_is_strict_and_bit_exact() {
        assert_eq!(parse_f32_array(b"[]").unwrap(), Vec::<f32>::new());
        assert_eq!(parse_f32_array(b" [ 1.0 , -2.5 ] ").unwrap(), vec![1.0, -2.5]);
        for poison in
            [&b"1.0"[..], b"[1.0,]", b"[NaN]", b"[inf]", b"[1.0] trailing", b"{\"a\":1}", b"[1;2]"]
        {
            assert!(parse_f32_array(poison).is_err(), "{poison:?} must be rejected");
        }
        // Round trip through the response formatter is bit-exact.
        let values = [1.0f32, -0.000123, 3.4e38, f32::MIN_POSITIVE, 0.1 + 0.2];
        let parsed = parse_f32_array(format_f32_array(&values).as_bytes()).unwrap();
        for (a, b) in values.iter().zip(&parsed) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn statuses_cover_every_serve_error() {
        assert_eq!(status_for(&ServeError::UnknownModel("m".into())).0, 404);
        assert_eq!(
            status_for(&ServeError::BadInput { model: "m".into(), expected: 1, actual: 2 }).0,
            400
        );
        assert_eq!(status_for(&ServeError::QueueFull { capacity: 1 }).0, 429);
        assert_eq!(status_for(&ServeError::QuotaExceeded { model: "m".into(), quota: 1 }).0, 429);
        assert_eq!(status_for(&ServeError::DeadlineExceeded { model: "m".into() }).0, 504);
        assert_eq!(status_for(&ServeError::Closed).0, 503);
        assert_eq!(
            status_for(&ServeError::CircuitOpen {
                model: "m".into(),
                retry_after: std::time::Duration::from_millis(100),
            })
            .0,
            503
        );
        assert_eq!(status_for(&ServeError::ShuttingDown).0, 503);
        assert_eq!(status_for(&ServeError::WorkerPanic).0, 500);
    }
}
