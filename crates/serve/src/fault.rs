//! Compile-time-gated fault injection for the serving tier's test
//! builds.
//!
//! Production builds compile every hook in this module to an empty
//! `#[inline]` no-op: the hooks only have bodies under `cfg(test)` (this
//! crate's own unit tests) or the non-default `fault` cargo feature
//! (the `tests/fault.rs` integration harness and the CI fault steps).
//! Arming a fault is a relaxed atomic store; hitting one is a relaxed
//! decrement — there is no lock anywhere, so injection can never
//! introduce a synchronisation edge that masks a real race.
//!
//! Supported faults (each armed for the next *n* hits):
//!
//! * **queue-full** — admissions behave as if the shard queue were at
//!   capacity, exercising the [`ServeError::QueueFull`] backpressure
//!   path without needing to actually fill a queue;
//! * **worker panic** — a worker panics mid-dispatch (inside the batch,
//!   before inference); the server must contain it: typed
//!   [`ServeError::WorkerPanic`] responses, no poisoned lock, the worker
//!   thread survives;
//! * **slow batch** — a dispatch stalls for a configured duration before
//!   inference, the deterministic way to force queued requests past
//!   their deadlines (deadline-shed testing);
//! * **registry read delay** — a registry lookup holds the shared lock
//!   for a configured duration, widening the mid-swap window so the
//!   reader/swapper interleaving is reliably exercised;
//! * **worker hang** — a dispatch stalls long enough for the worker's
//!   heartbeat to go stale, the deterministic way to trip the watchdog's
//!   hung-worker detection and crash-only respawn;
//! * **worker death** — a worker thread aborts *outside* the
//!   per-dispatch panic containment (at the top of its loop), the
//!   deterministic way to exercise dead-worker detection and respawn.
//!   Arm a large count of worker panics for a **panic storm** (the
//!   circuit-breaker trip scenario).
//!
//! [`ServeError::QueueFull`]: crate::ServeError::QueueFull
//! [`ServeError::WorkerPanic`]: crate::ServeError::WorkerPanic

#[cfg(any(test, feature = "fault"))]
mod armed {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    static QUEUE_FULL: AtomicU64 = AtomicU64::new(0);
    static WORKER_PANIC: AtomicU64 = AtomicU64::new(0);
    static SLOW_BATCH: AtomicU64 = AtomicU64::new(0);
    static SLOW_BATCH_US: AtomicU64 = AtomicU64::new(0);
    static REGISTRY_READ: AtomicU64 = AtomicU64::new(0);
    static REGISTRY_READ_US: AtomicU64 = AtomicU64::new(0);
    static WORKER_HANG: AtomicU64 = AtomicU64::new(0);
    static WORKER_HANG_US: AtomicU64 = AtomicU64::new(0);
    static WORKER_DIE: AtomicU64 = AtomicU64::new(0);

    /// Decrements `counter` if positive; returns whether it was.
    fn take(counter: &AtomicU64) -> bool {
        counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1)).is_ok()
    }

    /// Arms the next `n` admissions to report a full queue.
    pub fn arm_queue_full(n: u64) {
        QUEUE_FULL.store(n, Ordering::Relaxed);
    }

    /// Arms the next `n` dispatches to panic before inference.
    pub fn arm_worker_panic(n: u64) {
        WORKER_PANIC.store(n, Ordering::Relaxed);
    }

    /// Arms the next `n` dispatches to stall for `delay` before
    /// inference.
    pub fn arm_slow_batch(n: u64, delay: Duration) {
        SLOW_BATCH_US.store(delay.as_micros() as u64, Ordering::Relaxed);
        SLOW_BATCH.store(n, Ordering::Relaxed);
    }

    /// Arms the next `n` registry lookups to hold the shared lock for
    /// `delay` (the mid-swap window).
    pub fn arm_registry_read_delay(n: u64, delay: Duration) {
        REGISTRY_READ_US.store(delay.as_micros() as u64, Ordering::Relaxed);
        REGISTRY_READ.store(n, Ordering::Relaxed);
    }

    /// Arms the next `n` dispatches to hang for `delay` — long enough,
    /// with `delay > hang_timeout`, for the watchdog to declare the
    /// worker hung and respawn it. The hung thread finishes its batch
    /// when the sleep ends (crash-only: nobody waits for it).
    pub fn arm_worker_hang(n: u64, delay: Duration) {
        WORKER_HANG_US.store(delay.as_micros() as u64, Ordering::Relaxed);
        WORKER_HANG.store(n, Ordering::Relaxed);
    }

    /// Arms the next `n` worker-loop iterations to abort the worker
    /// thread (outside the per-dispatch panic containment), exercising
    /// dead-worker detection and respawn.
    pub fn arm_worker_die(n: u64) {
        WORKER_DIE.store(n, Ordering::Relaxed);
    }

    /// Disarms every fault.
    pub fn reset() {
        for counter in
            [&QUEUE_FULL, &WORKER_PANIC, &SLOW_BATCH, &REGISTRY_READ, &WORKER_HANG, &WORKER_DIE]
        {
            counter.store(0, Ordering::Relaxed);
        }
    }

    /// Hook: should this admission pretend the queue is full?
    pub(crate) fn take_queue_full() -> bool {
        take(&QUEUE_FULL)
    }

    /// Hook: panic if a worker panic is armed.
    pub(crate) fn maybe_worker_panic() {
        if take(&WORKER_PANIC) {
            panic!("fault injection: worker panic");
        }
    }

    /// Hook: stall if a slow batch is armed.
    pub(crate) fn maybe_slow_batch() {
        if take(&SLOW_BATCH) {
            std::thread::sleep(Duration::from_micros(SLOW_BATCH_US.load(Ordering::Relaxed)));
        }
    }

    /// Hook: hold the registry's shared lock open if armed.
    pub(crate) fn on_registry_read() {
        if take(&REGISTRY_READ) {
            std::thread::sleep(Duration::from_micros(REGISTRY_READ_US.load(Ordering::Relaxed)));
        }
    }

    /// Hook: hang the dispatching worker if armed.
    pub(crate) fn maybe_worker_hang() {
        if take(&WORKER_HANG) {
            std::thread::sleep(Duration::from_micros(WORKER_HANG_US.load(Ordering::Relaxed)));
        }
    }

    /// Hook: kill the worker thread if armed (panics outside the
    /// dispatch containment, so the thread actually dies).
    pub(crate) fn maybe_worker_die() {
        if take(&WORKER_DIE) {
            panic!("fault injection: worker death");
        }
    }
}

#[cfg(any(test, feature = "fault"))]
pub use armed::{
    arm_queue_full, arm_registry_read_delay, arm_slow_batch, arm_worker_die, arm_worker_hang,
    arm_worker_panic, reset,
};
#[cfg(any(test, feature = "fault"))]
pub(crate) use armed::{
    maybe_slow_batch, maybe_worker_die, maybe_worker_hang, maybe_worker_panic, on_registry_read,
    take_queue_full,
};

#[cfg(not(any(test, feature = "fault")))]
mod disarmed {
    /// Hook: never fires in production builds.
    #[inline(always)]
    pub(crate) fn take_queue_full() -> bool {
        false
    }

    /// Hook: never fires in production builds.
    #[inline(always)]
    pub(crate) fn maybe_worker_panic() {}

    /// Hook: never fires in production builds.
    #[inline(always)]
    pub(crate) fn maybe_slow_batch() {}

    /// Hook: never fires in production builds.
    #[inline(always)]
    pub(crate) fn on_registry_read() {}

    /// Hook: never fires in production builds.
    #[inline(always)]
    pub(crate) fn maybe_worker_hang() {}

    /// Hook: never fires in production builds.
    #[inline(always)]
    pub(crate) fn maybe_worker_die() {}
}

#[cfg(not(any(test, feature = "fault")))]
pub(crate) use disarmed::{
    maybe_slow_batch, maybe_worker_die, maybe_worker_hang, maybe_worker_panic, on_registry_read,
    take_queue_full,
};
