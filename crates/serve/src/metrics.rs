//! Serving telemetry: counters, latency percentiles, batch-size histogram,
//! shared-pool counters.
//!
//! All hot-path recording is lock-free (`AtomicU64` with relaxed
//! ordering — counts need no synchronises-with edges), so metrics cost a
//! few nanoseconds per request. Latencies land in power-of-two microsecond
//! buckets; percentiles are reported as the matching bucket's upper bound,
//! which is exact enough for operational monitoring (the load-generator
//! bench records exact per-request latencies separately).
//!
//! Each snapshot also samples the process-wide `mfdfp-rt` pool the tensor
//! kernels and batch dispatch share ([`mfdfp_rt::global_stats`] — reading
//! never instantiates the pool, so a metrics poll has no side effects):
//! `pool_threads` is the pool width (0 until any hot path engages it),
//! and `pool_tasks_run`/`pool_steals`/`pool_idle_parks` are monotonic
//! since process start, like the request counters are since server start.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of log2 latency buckets: bucket `i` covers `[2^i, 2^{i+1})` µs
/// (bucket 0 also absorbs sub-microsecond latencies), so the top bucket
/// starts at `2^39` µs ≈ 6.4 days — effectively unbounded.
const LATENCY_BUCKETS: usize = 40;

/// Live metrics shared between the server, its workers and observers.
pub struct ServerMetrics {
    started: Instant,
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    latency_sum_us: AtomicU64,
    latency_buckets: [AtomicU64; LATENCY_BUCKETS],
    /// Index `i` counts dispatched batches of size `i + 1`.
    batch_buckets: Vec<AtomicU64>,
}

impl ServerMetrics {
    /// Creates zeroed metrics for a server whose largest batch is
    /// `max_batch`.
    pub fn new(max_batch: usize) -> Self {
        ServerMetrics {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            latency_sum_us: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            batch_buckets: (0..max_batch.max(1)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records an accepted submission.
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an admission-control rejection (queue full).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one dispatched batch of `size` requests.
    pub fn record_batch(&self, size: usize) {
        let idx = size.clamp(1, self.batch_buckets.len()) - 1;
        self.batch_buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a successfully answered request and its end-to-end latency
    /// (queue wait + inference).
    pub fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        let idx = (us.max(1).ilog2() as usize).min(LATENCY_BUCKETS - 1);
        self.latency_buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request that failed inside the datapath.
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough point-in-time view (counters are read
    /// individually; relaxed skew of a few requests is acceptable for
    /// monitoring). `queue_depth` is sampled by the caller, which owns the
    /// queue.
    pub fn snapshot(&self, queue_depth: usize) -> MetricsSnapshot {
        let buckets: Vec<u64> =
            self.latency_buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let completed = self.completed.load(Ordering::Relaxed);
        let sum_us = self.latency_sum_us.load(Ordering::Relaxed);
        let mut batch_histogram: Vec<u64> =
            self.batch_buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        while batch_histogram.last() == Some(&0) && batch_histogram.len() > 1 {
            batch_histogram.pop();
        }
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let pool = mfdfp_rt::global_stats();
        MetricsSnapshot {
            uptime: self.started.elapsed(),
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            queue_depth,
            throughput_rps: completed as f64 / elapsed,
            mean_latency_us: if completed == 0 { 0.0 } else { sum_us as f64 / completed as f64 },
            p50_latency_us: percentile_upper_bound(&buckets, 0.50),
            p95_latency_us: percentile_upper_bound(&buckets, 0.95),
            p99_latency_us: percentile_upper_bound(&buckets, 0.99),
            batch_histogram,
            pool_threads: pool.threads,
            pool_tasks_run: pool.tasks_run,
            pool_steals: pool.steals,
            pool_idle_parks: pool.idle_parks,
        }
    }
}

/// Upper bound (µs) of the bucket holding the `q`-quantile observation;
/// 0 when nothing was recorded.
fn percentile_upper_bound(buckets: &[u64], q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return 2f64.powi(i as i32 + 1);
        }
    }
    2f64.powi(buckets.len() as i32)
}

/// A point-in-time metrics view, exportable as JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Time since the metrics (server) were created.
    pub uptime: Duration,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected by admission control (queue full).
    pub rejected: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests that failed in the datapath.
    pub failed: u64,
    /// Items in the queue at snapshot time.
    pub queue_depth: usize,
    /// Completed requests per second since start-up.
    pub throughput_rps: f64,
    /// Mean end-to-end latency in microseconds.
    pub mean_latency_us: f64,
    /// Median latency (bucket upper bound), microseconds.
    pub p50_latency_us: f64,
    /// 95th-percentile latency (bucket upper bound), microseconds.
    pub p95_latency_us: f64,
    /// 99th-percentile latency (bucket upper bound), microseconds.
    pub p99_latency_us: f64,
    /// `batch_histogram[i]` = number of dispatched batches of size `i+1`
    /// (trailing zero sizes trimmed).
    pub batch_histogram: Vec<u64>,
    /// Width of the shared `mfdfp-rt` pool (workers + helping caller);
    /// `0` until any hot path engages the pool — on a default
    /// (non-`parallel`) build it stays 0 forever.
    pub pool_threads: usize,
    /// Pool tasks run since process start (row chunks, batch-forward
    /// chunks, dispatched serve groups; counted at execution start, so
    /// an in-flight task is already included).
    pub pool_tasks_run: u64,
    /// Pool tasks executed by a thread other than their submitter.
    pub pool_steals: u64,
    /// Times a pool worker parked on an empty queue.
    pub pool_idle_parks: u64,
}

impl MetricsSnapshot {
    /// Largest batch size that was actually dispatched (0 before any
    /// dispatch).
    pub fn max_batch_observed(&self) -> usize {
        self.batch_histogram.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1)
    }

    /// Serialises the snapshot as a self-contained JSON object (the
    /// vendored `serde` shim does not serialise, so this is hand-rolled —
    /// stable key order, no trailing separators). The `pool` sub-object
    /// carries the shared runtime-pool counters; its fields are always
    /// present (zeros when the pool was never engaged) so the schema is
    /// identical across feature sets — see README "Metrics & capacity
    /// tuning" for the field semantics.
    pub fn to_json(&self) -> String {
        let hist: Vec<String> = self.batch_histogram.iter().map(u64::to_string).collect();
        format!(
            concat!(
                "{{\"uptime_s\":{:.3},\"submitted\":{},\"rejected\":{},",
                "\"completed\":{},\"failed\":{},\"queue_depth\":{},",
                "\"throughput_rps\":{:.2},\"latency_us\":{{\"mean\":{:.1},",
                "\"p50\":{:.1},\"p95\":{:.1},\"p99\":{:.1}}},",
                "\"batch_histogram\":[{}],",
                "\"pool\":{{\"threads\":{},\"tasks_run\":{},",
                "\"steals\":{},\"idle_parks\":{}}}}}"
            ),
            self.uptime.as_secs_f64(),
            self.submitted,
            self.rejected,
            self.completed,
            self.failed,
            self.queue_depth,
            self.throughput_rps,
            self.mean_latency_us,
            self.p50_latency_us,
            self.p95_latency_us,
            self.p99_latency_us,
            hist.join(","),
            self.pool_threads,
            self.pool_tasks_run,
            self.pool_steals,
            self.pool_idle_parks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServerMetrics::new(8);
        m.record_submitted();
        m.record_submitted();
        m.record_rejected();
        m.record_completed(Duration::from_micros(100));
        m.record_failed();
        let s = m.snapshot(3);
        assert_eq!((s.submitted, s.rejected, s.completed, s.failed), (2, 1, 1, 1));
        assert_eq!(s.queue_depth, 3);
        assert!(s.throughput_rps > 0.0);
    }

    #[test]
    fn batch_histogram_counts_sizes() {
        let m = ServerMetrics::new(4);
        m.record_batch(1);
        m.record_batch(3);
        m.record_batch(3);
        m.record_batch(9); // clamped into the top bucket
        let s = m.snapshot(0);
        assert_eq!(s.batch_histogram, vec![1, 0, 2, 1]);
        assert_eq!(s.max_batch_observed(), 4);
    }

    #[test]
    fn percentiles_track_bucket_bounds() {
        let m = ServerMetrics::new(1);
        // 99 fast requests (~16 µs bucket) and one slow outlier (~1 ms).
        for _ in 0..99 {
            m.record_completed(Duration::from_micros(16));
        }
        m.record_completed(Duration::from_micros(1000));
        let s = m.snapshot(0);
        assert_eq!(s.p50_latency_us, 32.0);
        assert_eq!(s.p95_latency_us, 32.0);
        // The p99 rank (ceil(0.99·100) = 99) still lands in the fast
        // bucket; only p100 would hit the outlier.
        assert_eq!(s.p99_latency_us, 32.0);
        assert!(s.mean_latency_us > 16.0);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = ServerMetrics::new(2).snapshot(0);
        assert_eq!(s.p50_latency_us, 0.0);
        assert_eq!(s.mean_latency_us, 0.0);
        assert_eq!(s.max_batch_observed(), 0);
        assert_eq!(s.batch_histogram, vec![0]);
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let m = ServerMetrics::new(2);
        m.record_submitted();
        m.record_batch(2);
        m.record_completed(Duration::from_micros(50));
        let json = m.snapshot(1).to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"submitted\":1",
            "\"queue_depth\":1",
            "\"batch_histogram\":[0,1]",
            "\"p95\":",
            "\"pool\":{\"threads\":",
            "\"tasks_run\":",
            "\"idle_parks\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced braces/brackets (cheap well-formedness check without a
        // JSON parser in the dependency-free workspace).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn pool_fields_are_coherent() {
        // The snapshot samples the process-wide pool: either nothing has
        // engaged it yet (all zeros incl. width) or it reports its real
        // width and monotonic counters.
        let s = ServerMetrics::new(1).snapshot(0);
        if s.pool_threads == 0 {
            assert_eq!((s.pool_tasks_run, s.pool_steals, s.pool_idle_parks), (0, 0, 0));
        } else {
            assert!(s.pool_steals <= s.pool_tasks_run);
        }
        let later = ServerMetrics::new(1).snapshot(0);
        assert!(later.pool_tasks_run >= s.pool_tasks_run, "pool counters are monotonic");
    }
}
