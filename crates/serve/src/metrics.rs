//! Serving telemetry: counters, latency percentiles, batch-size histogram,
//! per-stage breakdowns, per-model series, op-count/energy metering and
//! shared-pool counters.
//!
//! All hot-path recording is lock-free (`AtomicU64` with relaxed
//! ordering — counts need no synchronises-with edges), so metrics cost a
//! few nanoseconds per request. Latencies land in power-of-two microsecond
//! buckets; percentiles are reported as the matching bucket's upper bound,
//! which is exact enough for operational monitoring (the load-generator
//! bench records exact per-request latencies separately).
//!
//! Beyond the global request counters, a snapshot carries:
//!
//! * **stages** — queue-wait / inference / response-send histograms, so a
//!   p99 can be attributed to waiting vs computing vs answering;
//! * **models** — a per-model registry keyed like [`ModelRegistry`]
//!   (name → submitted/completed/failed/latency buckets/batch histogram),
//!   created lazily at first admission; the map is read-locked once per
//!   submit and never touched again on the hot path (workers hold `Arc`s);
//! * **ops** / **energy_estimate** — the process-wide datapath op
//!   counters ([`mfdfp_obs::ops`]: shift-MACs, im2col bytes,
//!   decode-fallback rows, tripped overflow audits) priced by
//!   [`mfdfp_accel::OpCostModel`]. Monotonic since process start, like
//!   the pool counters; all-zero without the `obs` feature. The JSON
//!   schema is identical across feature sets.
//!
//! Each snapshot also samples the process-wide `mfdfp-rt` pool the tensor
//! kernels and batch dispatch share ([`mfdfp_rt::global_stats`] — reading
//! never instantiates the pool, so a metrics poll has no side effects):
//! `pool_threads` is the pool width (0 until any hot path engages it),
//! and `pool_tasks_run`/`pool_steals`/`pool_idle_parks` are monotonic
//! since process start, like the request counters are since server start.
//!
//! [`ModelRegistry`]: crate::ModelRegistry

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use mfdfp_accel::{OpCostModel, OpEnergyEstimate};
use mfdfp_obs::OpCounters;

/// Number of log2 latency buckets: bucket `i` covers `[2^i, 2^{i+1})` µs
/// (bucket 0 also absorbs sub-microsecond latencies), so the top bucket
/// starts at `2^39` µs ≈ 6.4 days — effectively unbounded.
const LATENCY_BUCKETS: usize = 40;

/// A lock-free log2-µs duration histogram with sum and count — the
/// recording half of every latency/stage series in this module.
struct Histogram {
    count: AtomicU64,
    sum_us: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        let idx = (us.max(1).ilog2() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn load_buckets(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    fn snapshot(&self) -> StageSnapshot {
        let buckets = self.load_buckets();
        let count = self.count.load(Ordering::Relaxed);
        let sum_us = self.sum_us.load(Ordering::Relaxed);
        StageSnapshot {
            count,
            mean_us: if count == 0 { 0.0 } else { sum_us as f64 / count as f64 },
            p50_us: percentile_upper_bound(&buckets, 0.50),
            p95_us: percentile_upper_bound(&buckets, 0.95),
            p99_us: percentile_upper_bound(&buckets, 0.99),
        }
    }
}

/// Live metrics shared between the server, its workers and observers.
pub struct ServerMetrics {
    started: Instant,
    max_batch: usize,
    submitted: AtomicU64,
    rejected: AtomicU64,
    quota_rejected: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    latency: Histogram,
    /// Index `i` counts dispatched batches of size `i + 1`.
    batch_buckets: Vec<AtomicU64>,
    queue_wait: Histogram,
    infer: Histogram,
    respond: Histogram,
    models: RwLock<HashMap<String, Arc<ModelMetrics>>>,
    breaker_rejected: AtomicU64,
    breaker_opens: AtomicU64,
    respawns: AtomicU64,
    degraded: AtomicU64,
    /// Gauge, not a counter: the adaptive-degradation controller's
    /// current level (ensemble members trimmed). Workers read it per
    /// dispatch; only the supervisor writes it.
    degrade_level: AtomicU64,
    shutdown_rejected: AtomicU64,
    http_idle_closed: AtomicU64,
}

impl ServerMetrics {
    /// Creates zeroed metrics for a server whose largest batch is
    /// `max_batch`.
    pub fn new(max_batch: usize) -> Self {
        ServerMetrics {
            started: Instant::now(),
            max_batch: max_batch.max(1),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            quota_rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            latency: Histogram::new(),
            batch_buckets: (0..max_batch.max(1)).map(|_| AtomicU64::new(0)).collect(),
            queue_wait: Histogram::new(),
            infer: Histogram::new(),
            respond: Histogram::new(),
            models: RwLock::new(HashMap::new()),
            breaker_rejected: AtomicU64::new(0),
            breaker_opens: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            degrade_level: AtomicU64::new(0),
            shutdown_rejected: AtomicU64::new(0),
            http_idle_closed: AtomicU64::new(0),
        }
    }

    /// The per-model series for `name`, created on first use. One
    /// read-lock per call (plus a write-lock the first time a name is
    /// seen) — the server resolves this once at admission and carries
    /// the `Arc` with the request, so workers never touch the map.
    pub fn model(&self, name: &str) -> Arc<ModelMetrics> {
        if let Some(m) = self.models.read().expect("metrics poisoned").get(name) {
            return Arc::clone(m);
        }
        Arc::clone(
            self.models
                .write()
                .expect("metrics poisoned")
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(ModelMetrics::new(self.max_batch))),
        )
    }

    /// Records an accepted submission.
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an admission-control rejection (queue full).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an admission-control rejection caused by a per-model
    /// quota.
    pub fn record_quota_rejected(&self) {
        self.quota_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request shed by the batcher because its deadline
    /// expired before inference.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one dispatched batch of `size` requests.
    pub fn record_batch(&self, size: usize) {
        let idx = size.clamp(1, self.batch_buckets.len()) - 1;
        self.batch_buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a successfully answered request and its end-to-end latency
    /// (queue wait + inference).
    pub fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Records a request that failed inside the datapath.
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request's admission→dispatch wait (stage breakdown).
    pub fn record_queue_wait(&self, wait: Duration) {
        self.queue_wait.record(wait);
    }

    /// Records one batch's inference time (stage breakdown).
    pub fn record_infer(&self, time: Duration) {
        self.infer.record(time);
    }

    /// Records one batch's response materialisation/send time (stage
    /// breakdown).
    pub fn record_respond(&self, time: Duration) {
        self.respond.record(time);
    }

    /// Records an admission fast-failed by an open circuit breaker.
    pub fn record_breaker_rejected(&self) {
        self.breaker_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a circuit (re-)opening — called exactly once per trip.
    pub fn record_breaker_open(&self) {
        self.breaker_opens.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a worker thread respawned by the watchdog (dead or hung).
    pub fn record_respawn(&self) {
        self.respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request answered in degraded mode (truncated ensemble).
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a queued request rejected at the bounded-drain deadline.
    pub fn record_shutdown_rejected(&self) {
        self.shutdown_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an HTTP connection closed by the keep-alive idle timeout.
    pub fn record_http_idle_closed(&self) {
        self.http_idle_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the adaptive-degradation level gauge (supervisor only).
    pub fn set_degrade_level(&self, level: u64) {
        self.degrade_level.store(level, Ordering::Relaxed);
    }

    /// Current adaptive-degradation level: how many ensemble members the
    /// dispatch path trims (0 = full ensembles). Workers read this once
    /// per dispatched group.
    pub fn degrade_level(&self) -> u64 {
        self.degrade_level.load(Ordering::Relaxed)
    }

    /// Raw queue-wait bucket counts (log2-µs, cumulative since start).
    /// The supervisor differences two samples to get the distribution of
    /// waits observed in one control tick.
    pub(crate) fn queue_wait_bucket_counts(&self) -> Vec<u64> {
        self.queue_wait.load_buckets()
    }

    /// Watchdog respawns so far (the health surface reads this without
    /// paying for a full snapshot).
    pub(crate) fn respawn_count(&self) -> u64 {
        self.respawns.load(Ordering::Relaxed)
    }

    /// Takes a consistent-enough point-in-time view (counters are read
    /// individually; relaxed skew of a few requests is acceptable for
    /// monitoring). `queue_depth` is sampled by the caller, which owns the
    /// queue. Single-queue convenience for
    /// [`ServerMetrics::snapshot_sharded`].
    pub fn snapshot(&self, queue_depth: usize) -> MetricsSnapshot {
        self.snapshot_sharded(&[queue_depth])
    }

    /// [`ServerMetrics::snapshot`] over a sharded server: `shard_depths`
    /// holds each shard's queue depth (sampled by the caller, which owns
    /// the shards). The aggregate `queue_depth` is their sum, and —
    /// exactly like the single-queue path — `uptime` and
    /// `throughput_rps` come from **one** `elapsed()` sample, so the
    /// reported rate is always reproducible from the reported uptime no
    /// matter how many shards were merged.
    pub fn snapshot_sharded(&self, shard_depths: &[usize]) -> MetricsSnapshot {
        let queue_depth = shard_depths.iter().sum();
        let buckets = self.latency.load_buckets();
        let completed = self.completed.load(Ordering::Relaxed);
        let sum_us = self.latency.sum_us.load(Ordering::Relaxed);
        let mut batch_histogram: Vec<u64> =
            self.batch_buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        while batch_histogram.last() == Some(&0) && batch_histogram.len() > 1 {
            batch_histogram.pop();
        }
        // One clock sample for both `uptime` and the throughput
        // denominator — two `elapsed()` calls can disagree within a
        // snapshot and make the reported rate irreproducible from the
        // reported uptime.
        let uptime = self.started.elapsed();
        let elapsed = uptime.as_secs_f64().max(1e-9);
        let mut models: Vec<ModelSnapshot> = self
            .models
            .read()
            .expect("metrics poisoned")
            .iter()
            .map(|(name, m)| m.snapshot(name.clone()))
            .collect();
        models.sort_by(|a, b| a.name.cmp(&b.name));
        let ops = mfdfp_obs::ops::counters();
        let energy = OpCostModel::calibrated_65nm().estimate(&ops);
        let pool = mfdfp_rt::global_stats();
        MetricsSnapshot {
            uptime,
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            quota_rejected: self.quota_rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            queue_depth,
            shard_depths: shard_depths.to_vec(),
            throughput_rps: completed as f64 / elapsed,
            mean_latency_us: if completed == 0 { 0.0 } else { sum_us as f64 / completed as f64 },
            p50_latency_us: percentile_upper_bound(&buckets, 0.50),
            p95_latency_us: percentile_upper_bound(&buckets, 0.95),
            p99_latency_us: percentile_upper_bound(&buckets, 0.99),
            batch_histogram,
            stages: StagesSnapshot {
                queue_wait: self.queue_wait.snapshot(),
                infer: self.infer.snapshot(),
                respond: self.respond.snapshot(),
            },
            models,
            breaker_rejected: self.breaker_rejected.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            degrade_level: self.degrade_level.load(Ordering::Relaxed),
            shutdown_rejected: self.shutdown_rejected.load(Ordering::Relaxed),
            http_idle_closed: self.http_idle_closed.load(Ordering::Relaxed),
            ops,
            energy,
            pool_threads: pool.threads,
            pool_tasks_run: pool.tasks_run,
            pool_steals: pool.steals,
            pool_idle_parks: pool.idle_parks,
        }
    }
}

/// Per-model request/latency series, handed to workers as an `Arc` at
/// admission (keyed by model name in [`ServerMetrics::model`], mirroring
/// the [`ModelRegistry`](crate::ModelRegistry) keying).
pub struct ModelMetrics {
    submitted: AtomicU64,
    quota_rejected: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    /// Requests admitted but not yet answered/failed/shed — the
    /// admission token the per-model quota gates on.
    in_flight: AtomicU64,
    /// Registry version observed at the latest admission/swap.
    version: AtomicU64,
    /// Hot swaps recorded against this model (via `Server::swap_model`).
    swaps: AtomicU64,
    latency: Histogram,
    batch_buckets: Vec<AtomicU64>,
}

impl ModelMetrics {
    fn new(max_batch: usize) -> Self {
        ModelMetrics {
            submitted: AtomicU64::new(0),
            quota_rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            version: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            latency: Histogram::new(),
            batch_buckets: (0..max_batch.max(1)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records an accepted submission for this model.
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one dispatched batch of `size` requests for this model.
    pub fn record_batch(&self, size: usize) {
        let idx = size.clamp(1, self.batch_buckets.len()) - 1;
        self.batch_buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed request and its end-to-end latency.
    pub fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Records a datapath failure attributed to this model.
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an admission rejected by this model's quota.
    pub fn record_quota_rejected(&self) {
        self.quota_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request shed because its deadline expired before
    /// inference.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Attempts to take one in-flight admission slot. With `quota:
    /// Some(q)` the acquisition fails (and nothing is counted) once `q`
    /// requests are in flight; with `None` it always succeeds. Every
    /// successful acquisition must be paired with a
    /// [`ModelMetrics::release_slot`] when the request reaches a terminal
    /// state (answered, failed, shed, or rejected by the queue after
    /// acquisition).
    pub fn try_acquire_slot(&self, quota: Option<u64>) -> bool {
        self.in_flight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| match quota {
                Some(q) if n >= q => None,
                _ => Some(n + 1),
            })
            .is_ok()
    }

    /// Releases one in-flight admission slot (saturating — a stray
    /// release can never underflow).
    pub fn release_slot(&self) {
        let _ =
            self.in_flight.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
    }

    /// Requests currently in flight (admitted, not yet terminal).
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Notes the registry version a request resolved at admission (keeps
    /// the reported version fresh even if swaps bypass the server).
    pub fn note_version(&self, version: u64) {
        self.version.store(version, Ordering::Relaxed);
    }

    /// Records a hot swap to `new_version` against this model.
    pub fn record_swap(&self, new_version: u64) {
        self.version.store(new_version, Ordering::Relaxed);
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self, name: String) -> ModelSnapshot {
        let buckets = self.latency.load_buckets();
        let completed = self.completed.load(Ordering::Relaxed);
        let sum_us = self.latency.sum_us.load(Ordering::Relaxed);
        let mut batch_histogram: Vec<u64> =
            self.batch_buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        while batch_histogram.last() == Some(&0) && batch_histogram.len() > 1 {
            batch_histogram.pop();
        }
        ModelSnapshot {
            name,
            submitted: self.submitted.load(Ordering::Relaxed),
            quota_rejected: self.quota_rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            version: self.version.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            mean_latency_us: if completed == 0 { 0.0 } else { sum_us as f64 / completed as f64 },
            p50_latency_us: percentile_upper_bound(&buckets, 0.50),
            p95_latency_us: percentile_upper_bound(&buckets, 0.95),
            p99_latency_us: percentile_upper_bound(&buckets, 0.99),
            batch_histogram,
        }
    }
}

/// Upper bound (µs) of the bucket holding the `q`-quantile observation;
/// 0 when nothing was recorded. `pub(crate)` so the supervisor can run
/// the same estimator over per-tick bucket deltas.
pub(crate) fn percentile_upper_bound(buckets: &[u64], q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return 2f64.powi(i as i32 + 1);
        }
    }
    2f64.powi(buckets.len() as i32)
}

/// Percentile view of one histogram series (a pipeline stage, or a
/// model's latency): count, mean and bucket-upper-bound percentiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Mean duration in microseconds.
    pub mean_us: f64,
    /// Median (bucket upper bound), microseconds.
    pub p50_us: f64,
    /// 95th percentile (bucket upper bound), microseconds.
    pub p95_us: f64,
    /// 99th percentile (bucket upper bound), microseconds.
    pub p99_us: f64,
}

/// The pipeline-stage breakdown of a snapshot: where a request's
/// end-to-end latency goes. `queue_wait` is per request
/// (admission → dispatch); `infer` and `respond` are per dispatched
/// batch (so their counts track batches, not requests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagesSnapshot {
    /// Admission→dispatch wait, per request.
    pub queue_wait: StageSnapshot,
    /// Batched-inference time, per dispatched batch.
    pub infer: StageSnapshot,
    /// Response materialisation/send time, per dispatched batch.
    pub respond: StageSnapshot,
}

/// One model's slice of a snapshot (sorted by name in
/// [`MetricsSnapshot::models`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSnapshot {
    /// Registry name the model serves under.
    pub name: String,
    /// Requests accepted into the queue for this model.
    pub submitted: u64,
    /// Admissions rejected by this model's in-flight quota.
    pub quota_rejected: u64,
    /// Requests shed by the batcher (deadline expired before inference).
    pub shed: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests that failed in the datapath.
    pub failed: u64,
    /// Requests currently in flight (admitted, not yet terminal).
    pub in_flight: u64,
    /// Registry version at the latest admission or recorded swap (0
    /// before any request resolved this model).
    pub version: u64,
    /// Hot swaps recorded against this model.
    pub swaps: u64,
    /// Mean end-to-end latency in microseconds.
    pub mean_latency_us: f64,
    /// Median latency (bucket upper bound), microseconds.
    pub p50_latency_us: f64,
    /// 95th-percentile latency (bucket upper bound), microseconds.
    pub p95_latency_us: f64,
    /// 99th-percentile latency (bucket upper bound), microseconds.
    pub p99_latency_us: f64,
    /// `batch_histogram[i]` = dispatched batches of size `i+1` for this
    /// model (trailing zero sizes trimmed).
    pub batch_histogram: Vec<u64>,
}

/// A point-in-time metrics view, exportable as JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Time since the metrics (server) were created. The reported
    /// `throughput_rps` uses this exact sample as its denominator.
    pub uptime: Duration,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected by admission control (queue full).
    pub rejected: u64,
    /// Requests rejected by a per-model in-flight quota.
    pub quota_rejected: u64,
    /// Requests shed by the batcher: their deadline expired before
    /// inference started, so the datapath never ran for them. Every
    /// admitted request ends in exactly one of `completed`, `failed`,
    /// `shed` or `shutdown_rejected` — after a drain,
    /// `completed + failed + shed + shutdown_rejected == submitted`.
    pub shed: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests that failed in the datapath.
    pub failed: u64,
    /// Items queued at snapshot time, summed across shards.
    pub queue_depth: usize,
    /// Per-shard queue depths (one entry per shard, in shard order); the
    /// aggregate `queue_depth` is their sum and shares the same single
    /// clock sample as `uptime`/`throughput_rps`.
    pub shard_depths: Vec<usize>,
    /// Completed requests per second since start-up.
    pub throughput_rps: f64,
    /// Mean end-to-end latency in microseconds.
    pub mean_latency_us: f64,
    /// Median latency (bucket upper bound), microseconds.
    pub p50_latency_us: f64,
    /// 95th-percentile latency (bucket upper bound), microseconds.
    pub p95_latency_us: f64,
    /// 99th-percentile latency (bucket upper bound), microseconds.
    pub p99_latency_us: f64,
    /// `batch_histogram[i]` = number of dispatched batches of size `i+1`
    /// (trailing zero sizes trimmed).
    pub batch_histogram: Vec<u64>,
    /// Queue-wait / inference / response-send breakdown.
    pub stages: StagesSnapshot,
    /// Per-model series, sorted by model name. A model appears once its
    /// first request passes admission validation.
    pub models: Vec<ModelSnapshot>,
    /// Admissions fast-failed by an open circuit breaker.
    pub breaker_rejected: u64,
    /// Times any model's circuit (re-)opened.
    pub breaker_opens: u64,
    /// Worker threads respawned by the watchdog (dead or hung).
    pub respawns: u64,
    /// Requests answered in degraded mode (truncated ensemble prefix).
    pub degraded: u64,
    /// Adaptive-degradation level at snapshot time (gauge; 0 = full
    /// ensembles).
    pub degrade_level: u64,
    /// Queued requests rejected at the bounded-drain deadline
    /// ([`ServeError::ShuttingDown`](crate::ServeError::ShuttingDown)).
    pub shutdown_rejected: u64,
    /// HTTP keep-alive connections closed by the idle timeout.
    pub http_idle_closed: u64,
    /// Process-wide datapath op counters (monotonic since process
    /// start; all-zero without the `obs` feature).
    pub ops: OpCounters,
    /// [`ops`](Self::ops) priced by the calibrated 65 nm
    /// [`OpCostModel`] — the live shift-add-vs-multiply energy story.
    pub energy: OpEnergyEstimate,
    /// Width of the shared `mfdfp-rt` pool (workers + helping caller);
    /// `0` until any hot path engages the pool — on a default
    /// (non-`parallel`) build it stays 0 forever.
    pub pool_threads: usize,
    /// Pool tasks run since process start (row chunks, batch-forward
    /// chunks, dispatched serve groups; counted at execution start, so
    /// an in-flight task is already included).
    pub pool_tasks_run: u64,
    /// Pool tasks executed by a thread other than their submitter.
    pub pool_steals: u64,
    /// Times a pool worker parked on an empty queue.
    pub pool_idle_parks: u64,
}

/// Minimal JSON string escaping for model names (labels under the
/// caller's control, but the exporter stays correct for any name).
/// `pub(crate)` so the health surface escapes names the same way.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn stage_json(s: &StageSnapshot) -> String {
    format!(
        "{{\"count\":{},\"mean\":{:.1},\"p50\":{:.1},\"p95\":{:.1},\"p99\":{:.1}}}",
        s.count, s.mean_us, s.p50_us, s.p95_us, s.p99_us
    )
}

impl MetricsSnapshot {
    /// Largest batch size that was actually dispatched (0 before any
    /// dispatch).
    pub fn max_batch_observed(&self) -> usize {
        self.batch_histogram.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1)
    }

    /// Serialises the snapshot as a self-contained JSON object (the
    /// vendored `serde` shim does not serialise, so this is hand-rolled —
    /// stable key order, no trailing separators). Schema, stable across
    /// feature sets (see README "Metrics & capacity tuning" and
    /// "Flight-recorder tracing" for field semantics):
    ///
    /// * the global counters (now including `quota_rejected` and `shed`),
    ///   `shard_depths` (per-shard queue depths) and
    ///   `latency_us`/`batch_histogram`, as before;
    /// * `stages` — `queue_wait`/`infer`/`respond`, each
    ///   `{count, mean, p50, p95, p99}` (µs);
    /// * `models` — name-keyed object, one entry per served model with
    ///   its own counters, `latency_us` and `batch_histogram`;
    /// * `resilience` — the self-healing counters: watchdog `respawns`,
    ///   breaker fast-fails and opens, degraded answers and the current
    ///   `degrade_level` gauge, drain-deadline `shutdown_rejected`, and
    ///   `http_idle_closed` keep-alive reaps;
    /// * `ops` — process-wide datapath op counters (zeros without the
    ///   `obs` feature);
    /// * `energy_estimate` — `ops` priced in µJ by the calibrated
    ///   per-op cost model, with the FP32 baseline and saving;
    /// * `pool` — shared runtime-pool counters, always present (zeros
    ///   when the pool was never engaged).
    pub fn to_json(&self) -> String {
        let hist: Vec<String> = self.batch_histogram.iter().map(u64::to_string).collect();
        let models: Vec<String> = self
            .models
            .iter()
            .map(|m| {
                let mh: Vec<String> = m.batch_histogram.iter().map(u64::to_string).collect();
                format!(
                    concat!(
                        "\"{}\":{{\"submitted\":{},\"quota_rejected\":{},\"shed\":{},",
                        "\"completed\":{},\"failed\":{},\"in_flight\":{},",
                        "\"version\":{},\"swaps\":{},",
                        "\"latency_us\":{{\"mean\":{:.1},\"p50\":{:.1},\"p95\":{:.1},",
                        "\"p99\":{:.1}}},\"batch_histogram\":[{}]}}"
                    ),
                    json_escape(&m.name),
                    m.submitted,
                    m.quota_rejected,
                    m.shed,
                    m.completed,
                    m.failed,
                    m.in_flight,
                    m.version,
                    m.swaps,
                    m.mean_latency_us,
                    m.p50_latency_us,
                    m.p95_latency_us,
                    m.p99_latency_us,
                    mh.join(","),
                )
            })
            .collect();
        let depths: Vec<String> = self.shard_depths.iter().map(usize::to_string).collect();
        format!(
            concat!(
                "{{\"uptime_s\":{:.3},\"submitted\":{},\"rejected\":{},",
                "\"quota_rejected\":{},\"shed\":{},",
                "\"completed\":{},\"failed\":{},\"queue_depth\":{},",
                "\"shard_depths\":[{}],",
                "\"throughput_rps\":{:.2},\"latency_us\":{{\"mean\":{:.1},",
                "\"p50\":{:.1},\"p95\":{:.1},\"p99\":{:.1}}},",
                "\"batch_histogram\":[{}],",
                "\"stages\":{{\"queue_wait\":{},\"infer\":{},\"respond\":{}}},",
                "\"models\":{{{}}},",
                "\"resilience\":{{\"respawns\":{},\"breaker_rejected\":{},",
                "\"breaker_opens\":{},\"degraded\":{},\"degrade_level\":{},",
                "\"shutdown_rejected\":{},\"http_idle_closed\":{}}},",
                "\"ops\":{{\"shift_macs\":{},\"im2col_bytes\":{},",
                "\"decode_rows\":{},\"overflow_audits\":{}}},",
                "\"energy_estimate\":{{\"mac_uj\":{:.3},\"sram_uj\":{:.3},",
                "\"total_uj\":{:.3},\"fp32_baseline_uj\":{:.3},",
                "\"saving_pct\":{:.2}}},",
                "\"pool\":{{\"threads\":{},\"tasks_run\":{},",
                "\"steals\":{},\"idle_parks\":{}}}}}"
            ),
            self.uptime.as_secs_f64(),
            self.submitted,
            self.rejected,
            self.quota_rejected,
            self.shed,
            self.completed,
            self.failed,
            self.queue_depth,
            depths.join(","),
            self.throughput_rps,
            self.mean_latency_us,
            self.p50_latency_us,
            self.p95_latency_us,
            self.p99_latency_us,
            hist.join(","),
            stage_json(&self.stages.queue_wait),
            stage_json(&self.stages.infer),
            stage_json(&self.stages.respond),
            models.join(","),
            self.respawns,
            self.breaker_rejected,
            self.breaker_opens,
            self.degraded,
            self.degrade_level,
            self.shutdown_rejected,
            self.http_idle_closed,
            self.ops.shift_macs,
            self.ops.im2col_bytes,
            self.ops.decode_rows,
            self.ops.overflow_audits,
            self.energy.mac_uj,
            self.energy.sram_uj,
            self.energy.total_uj,
            self.energy.fp32_baseline_uj,
            self.energy.saving_pct,
            self.pool_threads,
            self.pool_tasks_run,
            self.pool_steals,
            self.pool_idle_parks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServerMetrics::new(8);
        m.record_submitted();
        m.record_submitted();
        m.record_rejected();
        m.record_completed(Duration::from_micros(100));
        m.record_failed();
        let s = m.snapshot(3);
        assert_eq!((s.submitted, s.rejected, s.completed, s.failed), (2, 1, 1, 1));
        assert_eq!(s.queue_depth, 3);
        assert!(s.throughput_rps > 0.0);
    }

    #[test]
    fn batch_histogram_counts_sizes() {
        let m = ServerMetrics::new(4);
        m.record_batch(1);
        m.record_batch(3);
        m.record_batch(3);
        m.record_batch(9); // clamped into the top bucket
        let s = m.snapshot(0);
        assert_eq!(s.batch_histogram, vec![1, 0, 2, 1]);
        assert_eq!(s.max_batch_observed(), 4);
    }

    #[test]
    fn percentiles_track_bucket_bounds() {
        let m = ServerMetrics::new(1);
        // 99 fast requests (~16 µs bucket) and one slow outlier (~1 ms).
        for _ in 0..99 {
            m.record_completed(Duration::from_micros(16));
        }
        m.record_completed(Duration::from_micros(1000));
        let s = m.snapshot(0);
        assert_eq!(s.p50_latency_us, 32.0);
        assert_eq!(s.p95_latency_us, 32.0);
        // The p99 rank (ceil(0.99·100) = 99) still lands in the fast
        // bucket; only p100 would hit the outlier.
        assert_eq!(s.p99_latency_us, 32.0);
        assert!(s.mean_latency_us > 16.0);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = ServerMetrics::new(2).snapshot(0);
        assert_eq!(s.p50_latency_us, 0.0);
        assert_eq!(s.mean_latency_us, 0.0);
        assert_eq!(s.max_batch_observed(), 0);
        assert_eq!(s.batch_histogram, vec![0]);
        assert!(s.models.is_empty());
        assert_eq!(s.stages.queue_wait.count, 0);
        assert_eq!(s.stages.infer.count, 0);
        assert_eq!(s.stages.respond.count, 0);
    }

    #[test]
    fn uptime_and_throughput_share_one_clock_sample() {
        let m = ServerMetrics::new(1);
        for _ in 0..1000 {
            m.record_completed(Duration::from_micros(10));
        }
        let s = m.snapshot(0);
        // The reported rate must be exactly reproducible from the
        // reported uptime — the two fields come from one clock sample.
        let expected = s.completed as f64 / s.uptime.as_secs_f64().max(1e-9);
        assert_eq!(s.throughput_rps, expected);
    }

    #[test]
    fn sharded_snapshot_merges_depths_and_keeps_one_clock_sample() {
        let m = ServerMetrics::new(1);
        for _ in 0..500 {
            m.record_completed(Duration::from_micros(10));
        }
        // The regression this pins: merging per-shard depths must not
        // introduce a second `elapsed()` sample — uptime and throughput
        // still agree exactly, for any number of shards.
        for depths in [vec![0usize], vec![3, 0, 7], vec![1, 2, 3, 4, 5, 6, 7, 8]] {
            let s = m.snapshot_sharded(&depths);
            assert_eq!(s.shard_depths, depths);
            assert_eq!(s.queue_depth, depths.iter().sum::<usize>());
            let expected = s.completed as f64 / s.uptime.as_secs_f64().max(1e-9);
            assert_eq!(
                s.throughput_rps, expected,
                "shard-merged snapshot must sample elapsed() exactly once"
            );
        }
        // The single-queue entry is the 1-shard special case.
        let s = m.snapshot(5);
        assert_eq!(s.shard_depths, vec![5]);
        assert_eq!(s.queue_depth, 5);
    }

    #[test]
    fn shed_and_quota_counters_accumulate() {
        let m = ServerMetrics::new(2);
        m.record_shed();
        m.record_shed();
        m.record_quota_rejected();
        let mm = m.model("tiny");
        mm.record_shed();
        mm.record_quota_rejected();
        let s = m.snapshot(0);
        assert_eq!((s.shed, s.quota_rejected), (2, 1));
        assert_eq!((s.models[0].shed, s.models[0].quota_rejected), (1, 1));
        let json = s.to_json();
        assert!(json.contains("\"shed\":2"), "{json}");
        assert!(json.contains("\"quota_rejected\":1"), "{json}");
        assert!(json.contains("\"shard_depths\":[0]"), "{json}");
    }

    #[test]
    fn quota_slots_gate_and_release() {
        let mm = ModelMetrics::new(1);
        assert!(mm.try_acquire_slot(Some(2)));
        assert!(mm.try_acquire_slot(Some(2)));
        assert!(!mm.try_acquire_slot(Some(2)), "third slot must be refused at quota 2");
        assert_eq!(mm.in_flight(), 2);
        mm.release_slot();
        assert!(mm.try_acquire_slot(Some(2)));
        // Unlimited admission still counts in-flight.
        assert!(mm.try_acquire_slot(None));
        assert_eq!(mm.in_flight(), 3);
        for _ in 0..10 {
            mm.release_slot(); // saturating: never underflows
        }
        assert_eq!(mm.in_flight(), 0);
    }

    #[test]
    fn versions_and_swaps_are_reported() {
        let m = ServerMetrics::new(1);
        let mm = m.model("hot");
        mm.note_version(1);
        mm.record_swap(2);
        mm.record_swap(3);
        let s = m.snapshot(0);
        assert_eq!((s.models[0].version, s.models[0].swaps), (3, 2));
        let json = s.to_json();
        assert!(json.contains("\"version\":3"), "{json}");
        assert!(json.contains("\"swaps\":2"), "{json}");
    }

    #[test]
    fn stage_histograms_record_independently() {
        let m = ServerMetrics::new(4);
        m.record_queue_wait(Duration::from_micros(100));
        m.record_queue_wait(Duration::from_micros(100));
        m.record_infer(Duration::from_micros(700));
        m.record_respond(Duration::from_micros(3));
        let s = m.snapshot(0);
        assert_eq!(s.stages.queue_wait.count, 2);
        assert_eq!(s.stages.infer.count, 1);
        assert_eq!(s.stages.respond.count, 1);
        assert!((s.stages.queue_wait.mean_us - 100.0).abs() < 1e-9);
        assert_eq!(s.stages.infer.p50_us, 1024.0); // bucket [512, 1024)
        assert!(s.stages.respond.p99_us <= 4.0);
    }

    #[test]
    fn per_model_series_accumulate_and_sort() {
        let m = ServerMetrics::new(4);
        let b = m.model("beta");
        let a = m.model("alpha");
        assert!(Arc::ptr_eq(&a, &m.model("alpha")), "same name, same series");
        a.record_submitted();
        a.record_batch(2);
        a.record_completed(Duration::from_micros(64));
        b.record_submitted();
        b.record_failed();
        let s = m.snapshot(0);
        assert_eq!(s.models.len(), 2);
        assert_eq!(s.models[0].name, "alpha");
        assert_eq!(s.models[1].name, "beta");
        assert_eq!((s.models[0].submitted, s.models[0].completed), (1, 1));
        assert_eq!(s.models[0].batch_histogram, vec![0, 1]);
        assert!(s.models[0].mean_latency_us > 0.0);
        assert_eq!((s.models[1].submitted, s.models[1].failed), (1, 1));
        // Per-model series are independent of the global counters.
        assert_eq!(s.completed, 0);
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let m = ServerMetrics::new(2);
        m.record_submitted();
        m.record_batch(2);
        m.record_completed(Duration::from_micros(50));
        m.record_queue_wait(Duration::from_micros(20));
        m.model("tiny").record_completed(Duration::from_micros(50));
        let json = m.snapshot(1).to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"submitted\":1",
            "\"queue_depth\":1",
            "\"batch_histogram\":[0,1]",
            "\"p95\":",
            "\"stages\":{\"queue_wait\":{\"count\":1",
            "\"infer\":{\"count\":0",
            "\"respond\":{\"count\":0",
            "\"models\":{\"tiny\":{\"submitted\":0",
            "\"resilience\":{\"respawns\":0",
            "\"breaker_opens\":0",
            "\"degrade_level\":0",
            "\"http_idle_closed\":0",
            "\"ops\":{\"shift_macs\":",
            "\"overflow_audits\":",
            "\"energy_estimate\":{\"mac_uj\":",
            "\"saving_pct\":",
            "\"pool\":{\"threads\":",
            "\"tasks_run\":",
            "\"idle_parks\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced braces/brackets (cheap well-formedness check without a
        // JSON parser in the dependency-free workspace).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn resilience_counters_and_gauge_accumulate() {
        let m = ServerMetrics::new(1);
        m.record_respawn();
        m.record_breaker_rejected();
        m.record_breaker_rejected();
        m.record_breaker_open();
        m.record_degraded();
        m.record_shutdown_rejected();
        m.record_http_idle_closed();
        m.set_degrade_level(2);
        assert_eq!(m.degrade_level(), 2);
        let s = m.snapshot(0);
        assert_eq!(s.respawns, 1);
        assert_eq!(s.breaker_rejected, 2);
        assert_eq!(s.breaker_opens, 1);
        assert_eq!(s.degraded, 1);
        assert_eq!(s.degrade_level, 2);
        assert_eq!(s.shutdown_rejected, 1);
        assert_eq!(s.http_idle_closed, 1);
        let json = s.to_json();
        assert!(json.contains("\"breaker_rejected\":2"), "{json}");
        assert!(json.contains("\"degrade_level\":2"), "{json}");
        // The gauge is a gauge: it moves both ways.
        m.set_degrade_level(0);
        assert_eq!(m.degrade_level(), 0);
    }

    #[test]
    fn queue_wait_buckets_expose_cumulative_counts_for_deltas() {
        let m = ServerMetrics::new(1);
        let before = m.queue_wait_bucket_counts();
        assert_eq!(before.iter().sum::<u64>(), 0);
        m.record_queue_wait(Duration::from_micros(100));
        m.record_queue_wait(Duration::from_micros(100_000));
        let after = m.queue_wait_bucket_counts();
        let delta: Vec<u64> = after.iter().zip(&before).map(|(a, b)| a - b).collect();
        assert_eq!(delta.iter().sum::<u64>(), 2);
        // The same estimator the snapshot uses works on the delta.
        assert!(percentile_upper_bound(&delta, 0.95) >= 100_000.0);
    }

    #[test]
    fn json_escapes_model_names() {
        let m = ServerMetrics::new(1);
        m.model("we\"ird\\name");
        let json = m.snapshot(0).to_json();
        assert!(json.contains("\"we\\\"ird\\\\name\":{"), "{json}");
    }

    #[test]
    fn ops_and_energy_respect_the_feature_gate() {
        let s = ServerMetrics::new(1).snapshot(0);
        #[cfg(not(feature = "obs"))]
        {
            assert_eq!(s.ops, mfdfp_obs::OpCounters::default());
            assert_eq!(s.energy.total_uj, 0.0);
            assert_eq!(s.energy.saving_pct, 0.0);
        }
        // With `obs` on, the counters are process-global and other tests
        // in this binary run real inference; only coherence is portable.
        assert!(s.energy.fp32_baseline_uj >= s.energy.total_uj);
        assert!((s.energy.total_uj - (s.energy.mac_uj + s.energy.sram_uj)).abs() < 1e-9);
    }

    #[test]
    fn pool_fields_are_coherent() {
        // The snapshot samples the process-wide pool: either nothing has
        // engaged it yet (all zeros incl. width) or it reports its real
        // width and monotonic counters.
        let s = ServerMetrics::new(1).snapshot(0);
        if s.pool_threads == 0 {
            assert_eq!((s.pool_tasks_run, s.pool_steals, s.pool_idle_parks), (0, 0, 0));
        } else {
            assert!(s.pool_steals <= s.pool_tasks_run);
        }
        let later = ServerMetrics::new(1).snapshot(0);
        assert!(later.pool_tasks_run >= s.pool_tasks_run, "pool counters are monotonic");
    }
}
