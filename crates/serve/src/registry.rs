//! Named model storage shared between submitters and workers.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use mfdfp_core::{AlignedBytes, CoreError, Ensemble, QuantizedNet, ZooView};
use mfdfp_tensor::{Tensor, Workspace, WorkspacePlan};

use crate::error::{Result, ServeError};

/// A deployable inference target: a single quantized network or a
/// logit-averaged ensemble (the paper's Phase 3 deployment).
///
/// Cloning is cheap (`Arc`); workers hold the clone resolved at admission,
/// so re-registering a name mid-flight never changes in-flight requests.
#[derive(Debug, Clone)]
pub enum ServedModel {
    /// One MF-DFP network.
    Single(Arc<QuantizedNet>),
    /// An ensemble of MF-DFP networks.
    Ensemble(Arc<Ensemble>),
}

impl ServedModel {
    /// Number of output classes.
    pub fn classes(&self) -> usize {
        match self {
            ServedModel::Single(net) => net.classes(),
            ServedModel::Ensemble(e) => e.classes(),
        }
    }

    /// Expected input element count per image, when derivable from the
    /// first compute layer.
    pub fn input_len(&self) -> Option<usize> {
        match self {
            ServedModel::Single(net) => net.input_len(),
            ServedModel::Ensemble(e) => e.members().first().and_then(QuantizedNet::input_len),
        }
    }

    /// Dequantized logits for an `N×…` batch (`N×classes`).
    ///
    /// # Errors
    ///
    /// Propagates datapath faults.
    pub fn logits_batch(&self, batch: &Tensor) -> std::result::Result<Tensor, CoreError> {
        match self {
            ServedModel::Single(net) => net.logits_batch(batch),
            ServedModel::Ensemble(e) => e.logits_batch(batch),
        }
    }

    /// Number of ensemble members (1 for a single network) — the upper
    /// bound of the degradation dial a dispatch worker may truncate to.
    pub fn members(&self) -> usize {
        match self {
            ServedModel::Single(_) => 1,
            ServedModel::Ensemble(e) => e.len(),
        }
    }

    /// The allocation-free batched-logits entry the dispatch workers use:
    /// `data` is `n` images flat, `out` receives the `n × classes` logits
    /// row-major, and all scratch comes from `ws`. With
    /// `members == self.members()` the values are identical to
    /// [`ServedModel::logits_batch`] on the same stacked batch; a smaller
    /// `members` serves an ensemble's member *prefix*, bit-identical to a
    /// standalone `members`-sized ensemble (see
    /// [`Ensemble::logits_batch_into`]). Single networks ignore the dial.
    ///
    /// # Errors
    ///
    /// Propagates datapath faults and shape mismatches.
    pub fn logits_batch_into(
        &self,
        data: &[f32],
        n: usize,
        ws: &mut Workspace,
        out: &mut [f32],
        members: usize,
    ) -> std::result::Result<(), CoreError> {
        match self {
            ServedModel::Single(net) => net.logits_batch_into(data, n, ws, out),
            ServedModel::Ensemble(e) => e.logits_batch_into(data, n, ws, out, members),
        }
    }

    /// Peak workspace sizes for serving this model (see
    /// [`QuantizedNet::plan`] / [`Ensemble::plan`]).
    pub fn plan(&self) -> WorkspacePlan {
        match self {
            ServedModel::Single(net) => net.plan(),
            ServedModel::Ensemble(e) => e.plan(),
        }
    }

    /// [`ServedModel::plan`] extended with the fused-batch dimension
    /// ([`QuantizedNet::plan_for_batch`] /
    /// [`Ensemble::plan_for_batch`]): what a dispatch worker sizes its
    /// scratch with so the batch-fused forward runs allocation-free up to
    /// the batcher's coalescing limit.
    pub fn plan_for_batch(&self, max_batch: usize) -> WorkspacePlan {
        match self {
            ServedModel::Single(net) => net.plan_for_batch(max_batch),
            ServedModel::Ensemble(e) => e.plan_for_batch(max_batch),
        }
    }

    /// Stable identity of the underlying allocation — used to group
    /// batched requests so two models that happen to share a name (one
    /// re-registered mid-flight) are never mixed into one batch.
    pub(crate) fn identity(&self) -> usize {
        match self {
            ServedModel::Single(net) => Arc::as_ptr(net) as usize,
            ServedModel::Ensemble(e) => Arc::as_ptr(e) as usize,
        }
    }
}

impl From<QuantizedNet> for ServedModel {
    fn from(net: QuantizedNet) -> Self {
        ServedModel::Single(Arc::new(net))
    }
}

impl From<Ensemble> for ServedModel {
    fn from(e: Ensemble) -> Self {
        ServedModel::Ensemble(Arc::new(e))
    }
}

/// One registry slot: the served model plus a monotonically increasing
/// version, bumped on every replacement (register-over or
/// [`ModelRegistry::swap`]).
#[derive(Debug, Clone)]
struct Entry {
    model: ServedModel,
    version: u64,
}

/// A concurrent, versioned name → model map.
///
/// Reads (every request admission) take a shared lock; writes
/// (register/swap/remove, rare) take it exclusively. Replacing a model is
/// an `Arc` flip: in-flight requests hold the `Arc` they resolved at
/// admission and drain on the old weights, new admissions see the new
/// ones — there is no moment where a request can observe half of each
/// (the batcher additionally groups by `Arc` identity, so one batch never
/// mixes two versions).
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Entry>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a model under `name`. Accepts a
    /// [`QuantizedNet`], an [`Ensemble`] or an existing [`ServedModel`].
    /// Returns the previous occupant, if any. A fresh name starts at
    /// version 1; replacing bumps the version (like
    /// [`ModelRegistry::swap`], which additionally *requires* the name to
    /// exist).
    pub fn register(&self, name: &str, model: impl Into<ServedModel>) -> Option<ServedModel> {
        let model = model.into();
        let mut map = self.models.write().expect("registry poisoned");
        match map.get_mut(name) {
            Some(entry) => {
                entry.version += 1;
                Some(std::mem::replace(&mut entry.model, model))
            }
            None => {
                map.insert(name.to_string(), Entry { model, version: 1 });
                None
            }
        }
    }

    /// Zero-downtime hot swap: atomically replaces the model behind
    /// `name` and bumps its version, returning `(old_model, new_version)`.
    /// Admissions racing the swap get either the old or the new `Arc`,
    /// never a torn mix; in-flight batches drain on the old weights.
    ///
    /// Unlike [`ModelRegistry::register`], swapping an unregistered name
    /// is an error — a swap is an *update*, and a typo must not silently
    /// create a second model.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] when `name` is not
    /// registered.
    pub fn swap(&self, name: &str, model: impl Into<ServedModel>) -> Result<(ServedModel, u64)> {
        let model = model.into();
        let mut map = self.models.write().expect("registry poisoned");
        match map.get_mut(name) {
            Some(entry) => {
                entry.version += 1;
                let old = std::mem::replace(&mut entry.model, model);
                Ok((old, entry.version))
            }
            None => Err(ServeError::UnknownModel(name.to_string())),
        }
    }

    /// Looks up a model by name.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] when absent.
    pub fn get(&self, name: &str) -> Result<ServedModel> {
        self.get_versioned(name).map(|(model, _)| model)
    }

    /// Looks up a model by name together with its current version.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] when absent.
    pub fn get_versioned(&self, name: &str) -> Result<(ServedModel, u64)> {
        let map = self.models.read().expect("registry poisoned");
        let entry =
            map.get(name).cloned().ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
        // Fault injection (test builds only): widen the window in which a
        // reader holds the shared lock, so the mid-swap interleaving is
        // reliably exercised.
        crate::fault::on_registry_read();
        drop(map);
        Ok((entry.model, entry.version))
    }

    /// The current version of `name` (1 for a fresh registration,
    /// bumped on every replacement).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] when absent.
    pub fn version(&self, name: &str) -> Result<u64> {
        self.get_versioned(name).map(|(_, version)| version)
    }

    /// Maps a multi-model zoo image (see `mfdfp_core::image`) into the
    /// registry: every model in the zoo's directory is opened zero-copy —
    /// weight and bias payloads stay in the zoo buffer, `Arc`-shared by
    /// all registered models — and registered under its directory name.
    /// No nibble is unpacked and no payload byte is copied.
    ///
    /// Returns the registered names, in directory order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Inference`] wrapping
    /// [`CoreError::BadImage`](mfdfp_core::CoreError::BadImage) if the
    /// zoo or any model section is malformed; nothing is registered in
    /// that case (all-or-nothing).
    pub fn load_zoo(&self, image: Arc<AlignedBytes>) -> Result<Vec<String>> {
        let zoo = ZooView::open(image).map_err(ServeError::Inference)?;
        let mut loaded = Vec::with_capacity(zoo.len());
        for i in 0..zoo.len() {
            let view = zoo.model(i).map_err(ServeError::Inference)?;
            let net = QuantizedNet::from_image(&view).map_err(ServeError::Inference)?;
            loaded.push((zoo.name(i).to_string(), net));
        }
        let mut names = Vec::with_capacity(loaded.len());
        for (name, net) in loaded {
            self.register(&name, net);
            names.push(name);
        }
        Ok(names)
    }

    /// Convenience for [`ModelRegistry::load_zoo`] over raw bytes (e.g.
    /// read from disk): copies them **once** into a fresh 64-byte-aligned
    /// buffer, then serves all models zero-copy out of that single copy.
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::load_zoo`].
    pub fn load_zoo_bytes(&self, bytes: &[u8]) -> Result<Vec<String>> {
        self.load_zoo(Arc::new(AlignedBytes::from_slice(bytes)))
    }

    /// Removes a model; in-flight requests that already resolved it keep
    /// their `Arc` and finish normally. Returns whether the name existed.
    pub fn remove(&self, name: &str) -> bool {
        self.models.write().expect("registry poisoned").remove(name).is_some()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.models.read().expect("registry poisoned").keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().expect("registry poisoned").len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_model_errors() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        assert!(matches!(reg.get("nope"), Err(ServeError::UnknownModel(n)) if n == "nope"));
        assert!(matches!(reg.version("nope"), Err(ServeError::UnknownModel(_))));
    }

    // Registration/lookup/versioning against real QuantizedNets is
    // exercised in tests/serving.rs (version lineage) and tests/chaos.rs
    // (Arc-flip hot swap under concurrent traffic), which build tiny
    // calibrated networks.
}
