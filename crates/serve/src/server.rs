//! The serving runtime: admission control → shard routing → bounded
//! queues → micro-batcher worker pools → batched integer inference →
//! per-request responses.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mfdfp_tensor::Tensor;

use crate::breaker::{Admission, BreakerBoard, BreakerSnapshot, CircuitBreaker};
use crate::config::ServeConfig;
use crate::error::{Result, ServeError};
use crate::fault;
use crate::metrics::{MetricsSnapshot, ModelMetrics, ServerMetrics};
use crate::queue::PushRejection;
use crate::registry::{ModelRegistry, ServedModel};
use crate::shard::Shard;
use crate::supervisor::Supervisor;

/// A finished inference answer.
#[derive(Debug, Clone)]
pub struct Response {
    /// Name of the model that served the request.
    pub model: String,
    /// Registry version of the model that served the request (1 for a
    /// fresh registration, bumped on every replacement/hot swap). Under a
    /// concurrent [`Server::swap_model`] this tells the caller *which*
    /// weights answered: always exactly one version's, never a mix.
    pub version: u64,
    /// Dequantized logits (`classes` values) — byte-identical to a direct
    /// [`mfdfp_core::QuantizedNet::logits`] call on the same input.
    pub logits: Tensor,
    /// `argmax` of the logits: the predicted class.
    pub class: usize,
    /// Size of the coalesced batch this request was dispatched in.
    pub batch_size: usize,
    /// End-to-end latency: admission to response (queue wait + inference).
    pub latency: std::time::Duration,
    /// Whether this answer was served in degraded mode: the adaptive
    /// degradation controller trimmed ensemble members to shed compute
    /// under overload. A degraded answer is still bit-identical to a
    /// standalone ensemble of the served prefix — smaller ensemble, not
    /// different arithmetic. Always `false` for single models. Surfaced
    /// over HTTP as the `x-mfdfp-degraded: 1` header and the `degraded`
    /// JSON field.
    pub degraded: bool,
}

/// A claim on a response that has not necessarily been computed yet.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response>>,
}

impl Ticket {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// Propagates serving/inference errors; [`ServeError::Closed`] if the
    /// server was torn down before answering.
    pub fn wait(self) -> Result<Response> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }
}

/// Scheduling class of a submission (see [`SubmitOptions::priority`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Throughput lane: coalesces into micro-batches under the normal
    /// `max_batch`/`max_wait` policy.
    #[default]
    Normal,
    /// Latency lane: bypasses batch coalescing — a worker that finds
    /// priority work dispatches it immediately without lingering, and a
    /// priority arrival cuts an open linger window short.
    High,
}

/// Per-request admission options for [`Server::submit_with`].
///
/// `Default` reproduces [`Server::submit`]: no deadline, normal priority.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Time budget from admission. A request still queued when its budget
    /// expires is *shed*: answered with [`ServeError::DeadlineExceeded`]
    /// at batch formation, before any datapath time is spent on it, and
    /// counted in the `shed` metrics. `None` never sheds.
    pub deadline: Option<Duration>,
    /// Scheduling class; see [`Priority`].
    pub priority: Priority,
}

/// One queued unit of work. The model is resolved at admission so workers
/// skip the registry and removal cannot strand in-flight requests; the
/// per-model metrics series rides along the same way, so workers never
/// touch the name-keyed metrics map either.
pub(crate) struct Request {
    pub(crate) model_name: String,
    pub(crate) model: ServedModel,
    pub(crate) version: u64,
    pub(crate) metrics_model: Arc<ModelMetrics>,
    pub(crate) image: Tensor,
    pub(crate) submitted: Instant,
    /// Flight-recorder timestamp of admission (0 without `obs`), so the
    /// exported trace can show each request's queue-wait span.
    pub(crate) submitted_ns: u64,
    /// Absolute shed deadline (admission time + the caller's budget).
    pub(crate) deadline: Option<Instant>,
    /// The model's circuit breaker (`None` when breakers are disabled):
    /// workers report the dispatch outcome, shed/drain paths release a
    /// held probe slot.
    pub(crate) breaker: Option<Arc<CircuitBreaker>>,
    pub(crate) tx: mpsc::Sender<Result<Response>>,
}

/// A sharded, multi-threaded dynamic-batching inference server over a
/// [`ModelRegistry`].
///
/// Lifecycle: [`Server::start`] spawns `shards × workers` worker threads
/// across [`ServeConfig::shards`] independent queue+pool units;
/// [`Server::submit`] / [`Server::submit_with`] perform admission control
/// (model resolution, input validation, per-model quota) and route to
/// `hash(model) % shards`; workers coalesce requests into batches
/// (bounded by `max_batch` / `max_wait`), shed the ones whose deadline
/// already passed, and dispatch the rest through the batched integer
/// datapath; [`Server::swap_model`] hot-swaps a model's weights with zero
/// downtime; [`Server::shutdown`] (or drop) closes the queues, drains
/// them and joins the workers.
pub struct Server {
    registry: Arc<ModelRegistry>,
    shards: Vec<Shard>,
    metrics: Arc<ServerMetrics>,
    breakers: Option<BreakerBoard>,
    supervisor: Supervisor,
    config: ServeConfig,
}

impl Server {
    /// Validates `config`, spawns the per-shard worker pools and the
    /// supervisor thread (worker watchdog + adaptive degradation
    /// controller; see the `supervisor` module docs).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for invalid knobs.
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> Result<Server> {
        config.validate()?;
        let metrics = Arc::new(ServerMetrics::new(config.max_batch));
        let shards =
            (0..config.shards).map(|id| Shard::start(id, &config, &metrics)).collect::<Vec<_>>();
        let breakers = config.breaker.clone().map(BreakerBoard::new);
        let supervisor = Supervisor::start(shards.clone(), Arc::clone(&metrics), config.clone());
        Ok(Server { registry, shards, metrics, breakers, supervisor, config })
    }

    /// Admits one inference request for `model` on a single image tensor
    /// (`C×H×W`, or flat features for MLPs) with default options (no
    /// deadline, normal priority) — see [`Server::submit_with`].
    ///
    /// # Errors
    ///
    /// As [`Server::submit_with`].
    ///
    /// # Examples
    ///
    /// End to end: quantize a tiny network, register it, submit one image
    /// and block on the ticket. The response is byte-identical to a
    /// direct `QuantizedNet::logits` call on the same input.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use mfdfp_core::{calibrate, QuantizedNet};
    /// use mfdfp_serve::{ModelRegistry, ServeConfig, Server};
    /// use mfdfp_tensor::TensorRng;
    ///
    /// // A small calibrated MF-DFP network (3×16×16 input, 10 classes).
    /// let mut rng = TensorRng::seed_from(5);
    /// let mut net = mfdfp_nn::zoo::quick_custom(3, 16, [2, 2, 4], 8, 10, &mut rng)?;
    /// let calib = rng.gaussian([2, 3, 16, 16], 0.0, 0.7);
    /// let plan = calibrate(&mut net, &[(calib, vec![0, 1])], 8)?;
    /// let qnet = QuantizedNet::from_network(&net, &plan)?;
    ///
    /// let registry = Arc::new(ModelRegistry::new());
    /// registry.register("tiny", qnet.clone());
    /// let server = Server::start(registry, ServeConfig::default())?;
    ///
    /// let image = rng.gaussian([3, 16, 16], 0.0, 0.7);
    /// let ticket = server.submit("tiny", image.clone())?;   // admission + enqueue
    /// let response = ticket.wait()?;                        // blocks for the batch
    /// assert_eq!(response.model, "tiny");
    /// assert_eq!(response.version, 1);
    /// assert_eq!(response.logits.as_slice(), qnet.logits(&image)?.as_slice());
    /// server.shutdown();
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn submit(&self, model: &str, image: Tensor) -> Result<Ticket> {
        self.submit_with(model, image, SubmitOptions::default())
    }

    /// Admits one inference request with explicit [`SubmitOptions`]
    /// (deadline for load shedding, priority lane).
    ///
    /// Admission control runs *before* the queue: unknown models,
    /// wrong-sized inputs and over-quota models are rejected without
    /// consuming capacity; a full shard queue rejects with
    /// [`ServeError::QueueFull`] (backpressure — the caller decides
    /// whether to retry, shed or block). The model's `Arc` and registry
    /// version are resolved here, so a concurrent
    /// [`Server::swap_model`] never changes what an admitted request
    /// computes on.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`], [`ServeError::BadInput`],
    /// [`ServeError::QuotaExceeded`], [`ServeError::QueueFull`] or
    /// [`ServeError::Closed`].
    pub fn submit_with(&self, model: &str, image: Tensor, opts: SubmitOptions) -> Result<Ticket> {
        let _span = mfdfp_obs::span!("serve.submit", image.len() as u64);
        let (resolved, version) = {
            let _span = mfdfp_obs::span!("serve.route", self.shards.len() as u64);
            self.registry.get_versioned(model)?
        };
        if let Some(expected) = resolved.input_len() {
            if image.len() != expected {
                return Err(ServeError::BadInput {
                    model: model.to_string(),
                    expected,
                    actual: image.len(),
                });
            }
        }
        let metrics_model = self.metrics.model(model);
        metrics_model.note_version(version);
        // Circuit breaker: an open circuit fast-fails here, before any
        // quota slot or queue capacity is consumed. An allowed admission
        // may hold a half-open probe slot, so every later rejection path
        // must discard it.
        let breaker = self.breakers.as_ref().map(|board| board.get(model));
        if let Some(breaker) = &breaker {
            if let Admission::Rejected { retry_after } = breaker.try_admit(Instant::now()) {
                self.metrics.record_breaker_rejected();
                return Err(ServeError::CircuitOpen { model: model.to_string(), retry_after });
            }
        }
        // Quota slot: held from admission to terminal answer (response,
        // failure or shed), so `in_flight` counts queued + computing.
        if !metrics_model.try_acquire_slot(self.config.model_quota) {
            self.metrics.record_quota_rejected();
            metrics_model.record_quota_rejected();
            if let Some(breaker) = &breaker {
                breaker.record_discarded();
            }
            return Err(ServeError::QuotaExceeded {
                model: model.to_string(),
                quota: self.config.model_quota.unwrap_or(0),
            });
        }
        let submitted = Instant::now();
        let (tx, rx) = mpsc::channel();
        let request = Request {
            model_name: model.to_string(),
            model: resolved,
            version,
            metrics_model: Arc::clone(&metrics_model),
            image,
            submitted,
            submitted_ns: mfdfp_obs::now_ns(),
            deadline: opts.deadline.map(|d| submitted + d),
            breaker: breaker.clone(),
            tx,
        };
        let shard = &self.shards[Self::route(model, self.shards.len())];
        // Fault injection (test builds only): pretend the shard queue is
        // at capacity to exercise the backpressure path deterministically.
        let pushed = if fault::take_queue_full() {
            Err((request, PushRejection::Full))
        } else {
            match opts.priority {
                Priority::Normal => shard.queue().try_push(request),
                Priority::High => shard.queue().try_push_priority(request),
            }
        };
        match pushed {
            Ok(()) => {
                self.metrics.record_submitted();
                metrics_model.record_submitted();
                Ok(Ticket { rx })
            }
            Err((_, PushRejection::Full)) => {
                metrics_model.release_slot();
                if let Some(breaker) = &breaker {
                    breaker.record_discarded();
                }
                self.metrics.record_rejected();
                Err(ServeError::QueueFull { capacity: shard.queue().capacity() })
            }
            Err((_, PushRejection::Closed)) => {
                metrics_model.release_slot();
                if let Some(breaker) = &breaker {
                    breaker.record_discarded();
                }
                Err(ServeError::Closed)
            }
        }
    }

    /// Hot-swaps the model behind `name` with zero downtime and returns
    /// the new registry version.
    ///
    /// The swap is an `Arc` flip in the registry: requests admitted
    /// before the flip drain on the old weights (the batcher groups by
    /// `Arc` identity, so a batch never mixes versions), requests
    /// admitted after it compute on the new ones, and every response
    /// reports which via [`Response::version`]. The per-model metrics
    /// record the version bump and count the swap.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] when `name` is not
    /// registered (a swap is an update; a typo must not create a second
    /// model).
    pub fn swap_model(&self, name: &str, model: impl Into<ServedModel>) -> Result<u64> {
        let (_old, version) = self.registry.swap(name, model)?;
        self.metrics.model(name).record_swap(version);
        Ok(version)
    }

    /// The registry this server draws models from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The live metrics recorder (crate-internal: the HTTP front-end
    /// counts idle-timeout closes against it).
    pub(crate) fn metrics_inner(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// A point-in-time metrics view: the global and per-model counters
    /// plus every shard's current queue depth, all sampled against a
    /// single clock read (see
    /// [`ServerMetrics::snapshot_sharded`]).
    pub fn metrics(&self) -> MetricsSnapshot {
        let depths: Vec<usize> = self.shards.iter().map(Shard::depth).collect();
        self.metrics.snapshot_sharded(&depths)
    }

    /// The self-healing status surface: per-shard worker heartbeat ages
    /// and queue depths, per-model breaker states, the degradation
    /// level and the respawn count. Served over HTTP as
    /// `GET /v1/health`; its `ready` bit alone as `GET /v1/ready`.
    pub fn health(&self) -> HealthSnapshot {
        let now = Instant::now();
        let shards: Vec<ShardHealth> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, shard)| ShardHealth {
                shard: i,
                queue_depth: shard.depth(),
                heartbeat_ages: shard.heartbeat_ages(),
            })
            .collect();
        // Ready = every shard still has at least one worker beating
        // within the hang timeout (a shard past that is either fully
        // hung — about to be respawned — or being torn down).
        let ready = shards
            .iter()
            .all(|s| s.heartbeat_ages.iter().any(|age| *age <= self.config.hang_timeout));
        HealthSnapshot {
            ready,
            shards,
            breakers: self.breakers.as_ref().map(|b| b.snapshot(now)).unwrap_or_default(),
            degrade_level: self.metrics.degrade_level(),
            respawns: self.metrics.respawn_count(),
        }
    }

    /// Readiness probe: `true` while every shard has a worker whose
    /// heartbeat is fresher than [`ServeConfig::hang_timeout`].
    pub fn ready(&self) -> bool {
        self.health().ready
    }

    /// Stable shard index for `model`: `hash(name) % shards`.
    /// `DefaultHasher::new()` uses fixed keys, so the mapping is
    /// deterministic across processes and runs.
    fn route(model: &str, shards: usize) -> usize {
        let mut hasher = DefaultHasher::new();
        model.hash(&mut hasher);
        (hasher.finish() % shards as u64) as usize
    }

    /// Stops admissions, drains queued requests and joins the workers
    /// (unbounded drain: every queued request is still answered).
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    /// Graceful shutdown with a **bounded** drain: admissions stop
    /// immediately, queued requests get up to `drain` to dispatch, and
    /// whatever is still queued at the deadline is answered with
    /// [`ServeError::ShuttingDown`] and counted in `shutdown_rejected` —
    /// so shutdown can never be held hostage by a deep queue, and the
    /// accounting identity still balances exactly:
    /// `completed + failed + shed + shutdown_rejected == submitted`.
    /// (In-flight batches already at a worker always finish; the bound
    /// applies to queue wait, not to compute.) Returns the final metrics
    /// snapshot, taken after every worker has joined, so callers can
    /// audit that identity.
    pub fn shutdown_within(mut self, drain: Duration) -> MetricsSnapshot {
        // Stop the supervisor first — its watchdog must not respawn the
        // workers this drain is about to join.
        self.supervisor.stop();
        for shard in &self.shards {
            shard.close();
        }
        let deadline = Instant::now() + drain;
        while self.shards.iter().any(|s| s.depth() > 0) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        for shard in &self.shards {
            for request in shard.queue().drain_pending() {
                self.metrics.record_shutdown_rejected();
                request.metrics_model.release_slot();
                if let Some(breaker) = &request.breaker {
                    breaker.record_discarded();
                }
                let _ = request.tx.send(Err(ServeError::ShuttingDown));
            }
        }
        for shard in &mut self.shards {
            shard.join();
        }
        let depths: Vec<usize> = self.shards.iter().map(Shard::depth).collect();
        self.metrics.snapshot_sharded(&depths)
    }

    fn shutdown_in_place(&mut self) {
        self.supervisor.stop();
        for shard in &self.shards {
            shard.close();
        }
        for shard in &mut self.shards {
            shard.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// One shard's supervision view inside a [`HealthSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index (the routing target `hash(model) % shards`).
    pub shard: usize,
    /// Requests queued on this shard at sample time.
    pub queue_depth: usize,
    /// Each worker slot's heartbeat age at sample time. An age past
    /// [`ServeConfig::hang_timeout`] means the watchdog is about to
    /// replace that worker.
    pub heartbeat_ages: Vec<Duration>,
}

/// The self-healing status surface returned by [`Server::health`] and
/// served at `GET /v1/health`.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Every shard has at least one worker whose heartbeat is fresher
    /// than the hang timeout (the `GET /v1/ready` bit).
    pub ready: bool,
    /// Per-shard queue depth and worker heartbeat ages.
    pub shards: Vec<ShardHealth>,
    /// Per-model circuit-breaker snapshots, sorted by model name (empty
    /// while no model has been submitted to, or when breakers are
    /// disabled).
    pub breakers: Vec<(String, BreakerSnapshot)>,
    /// Current adaptive-degradation level (0 = full ensembles served).
    pub degrade_level: u64,
    /// Watchdog worker respawns since the server started.
    pub respawns: u64,
}

impl HealthSnapshot {
    /// Serialises the snapshot as a self-contained JSON object with
    /// stable key order (hand-rolled like
    /// [`MetricsSnapshot::to_json`]): the `ready` bit, the
    /// `degrade_level` gauge, the `respawns` counter, a `shards` array
    /// (`{shard, queue_depth, heartbeat_ages_ms}`) and a name-keyed
    /// `breakers` object
    /// (`{state, consecutive_failures, retry_in_ms, opens}`).
    pub fn to_json(&self) -> String {
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                let ages: Vec<String> = s
                    .heartbeat_ages
                    .iter()
                    .map(|age| format!("{:.3}", age.as_secs_f64() * 1000.0))
                    .collect();
                format!(
                    "{{\"shard\":{},\"queue_depth\":{},\"heartbeat_ages_ms\":[{}]}}",
                    s.shard,
                    s.queue_depth,
                    ages.join(",")
                )
            })
            .collect();
        let breakers: Vec<String> = self
            .breakers
            .iter()
            .map(|(name, b)| {
                format!(
                    concat!(
                        "\"{}\":{{\"state\":\"{}\",\"consecutive_failures\":{},",
                        "\"retry_in_ms\":{:.3},\"opens\":{}}}"
                    ),
                    crate::metrics::json_escape(name),
                    b.state.name(),
                    b.consecutive_failures,
                    b.retry_in.unwrap_or_default().as_secs_f64() * 1000.0,
                    b.opens,
                )
            })
            .collect();
        format!(
            "{{\"ready\":{},\"degrade_level\":{},\"respawns\":{},\"shards\":[{}],\"breakers\":{{{}}}}}",
            self.ready,
            self.degrade_level,
            self.respawns,
            shards.join(","),
            breakers.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for shards in 1..=8 {
            for name in ["a", "mnist", "cifar10", "svhn", "zoo/model-17"] {
                let first = Server::route(name, shards);
                assert!(first < shards);
                assert_eq!(first, Server::route(name, shards));
            }
        }
        // One shard takes everything.
        assert_eq!(Server::route("anything", 1), 0);
    }
}
