//! The serving runtime: admission control → bounded queue → micro-batcher
//! worker pool → batched integer inference → per-request responses.

use std::cell::RefCell;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use mfdfp_tensor::{Tensor, Workspace};

use crate::config::ServeConfig;
use crate::error::{Result, ServeError};
use crate::metrics::{MetricsSnapshot, ModelMetrics, ServerMetrics};
use crate::queue::{BoundedQueue, PushRejection};
use crate::registry::{ModelRegistry, ServedModel};

/// A finished inference answer.
#[derive(Debug, Clone)]
pub struct Response {
    /// Name of the model that served the request.
    pub model: String,
    /// Dequantized logits (`classes` values) — byte-identical to a direct
    /// [`mfdfp_core::QuantizedNet::logits`] call on the same input.
    pub logits: Tensor,
    /// `argmax` of the logits: the predicted class.
    pub class: usize,
    /// Size of the coalesced batch this request was dispatched in.
    pub batch_size: usize,
    /// End-to-end latency: admission to response (queue wait + inference).
    pub latency: std::time::Duration,
}

/// A claim on a response that has not necessarily been computed yet.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response>>,
}

impl Ticket {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// Propagates serving/inference errors; [`ServeError::Closed`] if the
    /// server was torn down before answering.
    pub fn wait(self) -> Result<Response> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }
}

/// One queued unit of work. The model is resolved at admission so workers
/// skip the registry and removal cannot strand in-flight requests; the
/// per-model metrics series rides along the same way, so workers never
/// touch the name-keyed metrics map either.
struct Request {
    model_name: String,
    model: ServedModel,
    metrics_model: Arc<ModelMetrics>,
    image: Tensor,
    submitted: Instant,
    /// Flight-recorder timestamp of admission (0 without `obs`), so the
    /// exported trace can show each request's queue-wait span.
    submitted_ns: u64,
    tx: mpsc::Sender<Result<Response>>,
}

/// A multi-threaded dynamic-batching inference server over a
/// [`ModelRegistry`].
///
/// Lifecycle: [`Server::start`] spawns the worker pool; [`Server::submit`]
/// performs admission control and enqueues; workers coalesce requests into
/// batches (bounded by `max_batch` / `max_wait`) and dispatch them through
/// the batched integer datapath; [`Server::shutdown`] (or drop) closes the
/// queue, drains it and joins the workers.
pub struct Server {
    registry: Arc<ModelRegistry>,
    queue: Arc<BoundedQueue<Request>>,
    metrics: Arc<ServerMetrics>,
    workers: Vec<JoinHandle<()>>,
    config: ServeConfig,
}

impl Server {
    /// Validates `config` and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for invalid knobs.
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> Result<Server> {
        config.validate()?;
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let metrics = Arc::new(ServerMetrics::new(config.max_batch));
        let workers = (0..config.workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let metrics = Arc::clone(&metrics);
                let cfg = config.clone();
                std::thread::Builder::new()
                    .name(format!("mfdfp-serve-{i}"))
                    .spawn(move || worker_loop(&queue, &metrics, &cfg))
                    .expect("failed to spawn serving worker")
            })
            .collect();
        Ok(Server { registry, queue, metrics, workers, config })
    }

    /// Admits one inference request for `model` on a single image tensor
    /// (`C×H×W`, or flat features for MLPs).
    ///
    /// Admission control runs *before* the queue: unknown models and
    /// wrong-sized inputs are rejected without consuming capacity; a full
    /// queue rejects with [`ServeError::QueueFull`] (backpressure — the
    /// caller decides whether to retry, shed or block).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`], [`ServeError::BadInput`],
    /// [`ServeError::QueueFull`] or [`ServeError::Closed`].
    ///
    /// # Examples
    ///
    /// End to end: quantize a tiny network, register it, submit one image
    /// and block on the ticket. The response is byte-identical to a
    /// direct `QuantizedNet::logits` call on the same input.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use mfdfp_core::{calibrate, QuantizedNet};
    /// use mfdfp_serve::{ModelRegistry, ServeConfig, Server};
    /// use mfdfp_tensor::TensorRng;
    ///
    /// // A small calibrated MF-DFP network (3×16×16 input, 10 classes).
    /// let mut rng = TensorRng::seed_from(5);
    /// let mut net = mfdfp_nn::zoo::quick_custom(3, 16, [2, 2, 4], 8, 10, &mut rng)?;
    /// let calib = rng.gaussian([2, 3, 16, 16], 0.0, 0.7);
    /// let plan = calibrate(&mut net, &[(calib, vec![0, 1])], 8)?;
    /// let qnet = QuantizedNet::from_network(&net, &plan)?;
    ///
    /// let registry = Arc::new(ModelRegistry::new());
    /// registry.register("tiny", qnet.clone());
    /// let server = Server::start(registry, ServeConfig::default())?;
    ///
    /// let image = rng.gaussian([3, 16, 16], 0.0, 0.7);
    /// let ticket = server.submit("tiny", image.clone())?;   // admission + enqueue
    /// let response = ticket.wait()?;                        // blocks for the batch
    /// assert_eq!(response.model, "tiny");
    /// assert_eq!(response.logits.as_slice(), qnet.logits(&image)?.as_slice());
    /// server.shutdown();
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn submit(&self, model: &str, image: Tensor) -> Result<Ticket> {
        let _span = mfdfp_obs::span!("serve.submit", image.len() as u64);
        let resolved = self.registry.get(model)?;
        if let Some(expected) = resolved.input_len() {
            if image.len() != expected {
                return Err(ServeError::BadInput {
                    model: model.to_string(),
                    expected,
                    actual: image.len(),
                });
            }
        }
        let metrics_model = self.metrics.model(model);
        let (tx, rx) = mpsc::channel();
        let request = Request {
            model_name: model.to_string(),
            model: resolved,
            metrics_model: Arc::clone(&metrics_model),
            image,
            submitted: Instant::now(),
            submitted_ns: mfdfp_obs::now_ns(),
            tx,
        };
        match self.queue.try_push(request) {
            Ok(()) => {
                self.metrics.record_submitted();
                metrics_model.record_submitted();
                Ok(Ticket { rx })
            }
            Err((_, PushRejection::Full)) => {
                self.metrics.record_rejected();
                Err(ServeError::QueueFull { capacity: self.queue.capacity() })
            }
            Err((_, PushRejection::Closed)) => Err(ServeError::Closed),
        }
    }

    /// The registry this server draws models from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// A point-in-time metrics view (including current queue depth).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.queue.len())
    }

    /// Stops admissions, drains queued requests and joins the workers.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Drains the queue until close-and-empty: pops coalesced batches, groups
/// them per model, dispatches each group through the batched quantized
/// forward, scatters responses.
///
/// With the `parallel` feature, each per-model group is submitted to the
/// shared `mfdfp-rt` pool as one task instead of running unconditionally
/// on this worker thread: inference executes on the same persistent
/// threads the GEMM/conv kernels fan out on (no per-call thread
/// spawning anywhere in the dispatch), and multi-model batches run
/// their groups concurrently. The scope owner helps execute its own
/// tasks while it waits — a single-group batch typically runs on the
/// submitting worker itself (an idle pool worker may win the claim
/// first, at the cost of one hand-off), and a waiting serve worker is
/// itself a compute lane: the process computes on at most
/// `serve workers + pool width − 1` threads (see README "Threading
/// model" for sizing guidance). Without the feature, groups run inline
/// and the pool is never engaged.
fn worker_loop(queue: &BoundedQueue<Request>, metrics: &ServerMetrics, cfg: &ServeConfig) {
    loop {
        // Batch formation spans the blocking pop + linger window, so the
        // trace shows how long each worker spent coalescing vs idle.
        let formed_from = mfdfp_obs::now_ns();
        let Some(batch) = queue.pop_batch(cfg.max_batch, cfg.max_wait) else {
            break;
        };
        mfdfp_obs::record_complete(
            "serve.batch_form",
            batch.len() as u64,
            formed_from,
            mfdfp_obs::now_ns(),
        );
        let groups = partition_by_model(batch);
        run_groups(groups, metrics);
    }
}

#[cfg(not(feature = "parallel"))]
fn run_groups(groups: Vec<Vec<Request>>, metrics: &ServerMetrics) {
    for group in groups {
        dispatch_group(group, metrics);
    }
}

#[cfg(feature = "parallel")]
fn run_groups(groups: Vec<Vec<Request>>, metrics: &ServerMetrics) {
    mfdfp_rt::global().scope(|scope| {
        for group in groups {
            scope.spawn(move || dispatch_group(group, metrics));
        }
    });
}

/// Splits a popped batch into per-model groups, preserving arrival order
/// within each group. Grouping keys on the resolved model's allocation
/// identity (not its name, so a name re-registered mid-queue never mixes
/// two different networks into one batch) *and* the image element count,
/// so two same-length-checked but differently-sized inputs — possible
/// when a model exposes no `input_len` — can never misalign one batch.
fn partition_by_model(batch: Vec<Request>) -> Vec<Vec<Request>> {
    let mut groups: Vec<((usize, usize), Vec<Request>)> = Vec::new();
    for request in batch {
        let key = (request.model.identity(), request.image.len());
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, group)) => group.push(request),
            None => groups.push((key, vec![request])),
        }
    }
    groups.into_iter().map(|(_, g)| g).collect()
}

/// Per-worker dispatch scratch: the flattened input batch, the logits
/// output row-block (both grow-only) and the worker's own inference
/// [`Workspace`]. Owning the workspace here — rather than borrowing the
/// shared per-thread one — keeps that thread-level workspace free for
/// image-chunk tasks the pool may hand back to this same thread under
/// the `parallel` feature (the rt help-first protocol), so a warmed
/// dispatch's inference performs zero heap allocations on every path;
/// only the per-request response materialisation (one logits `Tensor`
/// per ticket, the channel send) still allocates, because those buffers
/// leave the worker with the response.
#[derive(Default)]
struct WorkerScratch {
    data: Vec<f32>,
    logits: Vec<f32>,
    ws: Workspace,
}

thread_local! {
    /// One staging scratch per worker thread — dispatch runs either on a
    /// serving worker (serial build) or on a persistent pool thread
    /// (`parallel` feature), and both live as long as the process.
    static WORKER_SCRATCH: RefCell<WorkerScratch> = RefCell::new(WorkerScratch::default());
}

/// Runs `f` with the calling thread's persistent staging scratch; falls
/// back to a fresh scratch if the thread is already dispatching (a pool
/// thread helping with a stolen dispatch task while its own inference
/// scope waits).
fn with_worker_scratch<R>(f: impl FnOnce(&mut WorkerScratch) -> R) -> R {
    WORKER_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut WorkerScratch::default()),
    })
}

/// Runs one same-model group as a single batched inference and answers
/// every member. Inference faults fan the error out to the whole group.
///
/// The batch is assembled flat (`N×len` — the integer datapath reads raw
/// element slices, so per-image shape is irrelevant): requests that were
/// admitted with equal element counts but different shapes, e.g. `[768]`
/// next to `[3,16,16]`, batch together instead of poisoning each other.
/// Staging and inference scratch come from the worker's persistent
/// buffers ([`WorkerScratch`] + the thread workspace), so a warmed
/// worker's steady-state compute performs zero heap allocations.
fn dispatch_group(group: Vec<Request>, metrics: &ServerMetrics) {
    let dispatched = Instant::now();
    let dispatched_ns = mfdfp_obs::now_ns();
    metrics.record_batch(group.len());
    group[0].metrics_model.record_batch(group.len());
    for request in &group {
        // `duration_since` saturates to zero, so a clock read that lands
        // between two threads' samples can never panic the worker.
        metrics.record_queue_wait(dispatched.duration_since(request.submitted));
        mfdfp_obs::record_complete(
            "serve.queue_wait",
            group.len() as u64,
            request.submitted_ns,
            dispatched_ns,
        );
    }
    let model = group[0].model.clone();
    let batch_size = group.len();
    let classes = model.classes();
    with_worker_scratch(|scratch| {
        scratch.data.clear();
        for request in &group {
            scratch.data.extend_from_slice(request.image.as_slice());
        }
        scratch.logits.resize(batch_size * classes, 0.0);
        // Size the inference workspace for the batch-fused forward (the
        // whole batch runs as one interleaved layer loop, so activation
        // and im2col staging scale by the batch). `reserve` on a warmed
        // workspace is a no-op, so steady-state dispatch stays
        // allocation-free.
        scratch.ws.reserve(&model.plan_for_batch(batch_size));
        let infer_started = Instant::now();
        let inference = {
            let _span = mfdfp_obs::span!("serve.infer", batch_size as u64);
            model.logits_batch_into(&scratch.data, batch_size, &mut scratch.ws, &mut scratch.logits)
        };
        metrics.record_infer(infer_started.elapsed());
        match inference {
            Ok(()) => {
                let respond_started = Instant::now();
                let _span = mfdfp_obs::span!("serve.respond", batch_size as u64);
                for (row, request) in scratch.logits.chunks(classes).zip(group) {
                    let latency = request.submitted.elapsed();
                    request.metrics_model.record_completed(latency);
                    let logits = Tensor::from_slice(row);
                    let response = Response {
                        model: request.model_name,
                        class: logits.argmax(),
                        logits,
                        batch_size,
                        latency,
                    };
                    metrics.record_completed(response.latency);
                    // A dropped Ticket is not an error; the work is done.
                    let _ = request.tx.send(Ok(response));
                }
                metrics.record_respond(respond_started.elapsed());
            }
            Err(e) => {
                let err = ServeError::Inference(e);
                for request in group {
                    let _ = request.tx.send(Err(err.clone()));
                    metrics.record_failed();
                    request.metrics_model.record_failed();
                }
            }
        }
    });
}
