//! Worker shards: each shard is an independent (bounded queue +
//! micro-batcher worker pool) unit.
//!
//! The server routes a request to `hash(model name) % shards`, so two
//! independent models never contend on one queue and a slow model cannot
//! convoy a fast one. Inside a shard the pipeline is the PR-2
//! micro-batcher, extended with admission-control semantics:
//!
//! * **deadline shedding** — after popping a batch, the worker drops
//!   every request whose deadline already expired (typed
//!   [`ServeError::DeadlineExceeded`], counted in the `shed` metrics)
//!   *before* spending datapath time on it;
//! * **panic containment** — inference runs under `catch_unwind`; a
//!   panicking dispatch answers its whole batch with
//!   [`ServeError::WorkerPanic`] and the worker thread survives (no lock
//!   is held across the unwind, so nothing is poisoned);
//! * **priority lane** — the queue's priority lane is popped first and
//!   dispatched immediately (see
//!   [`BoundedQueue::pop_batch`](crate::BoundedQueue::pop_batch)).

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use mfdfp_tensor::{Tensor, Workspace};

use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::fault;
use crate::metrics::ServerMetrics;
use crate::queue::BoundedQueue;
use crate::server::{Request, Response};

/// One independent queue + worker-pool unit of a sharded server.
pub(crate) struct Shard {
    queue: Arc<BoundedQueue<Request>>,
    workers: Vec<JoinHandle<()>>,
}

impl Shard {
    /// Spawns the shard's worker pool over a fresh bounded queue.
    pub(crate) fn start(id: usize, config: &ServeConfig, metrics: &Arc<ServerMetrics>) -> Shard {
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let workers = (0..config.workers)
            .map(|w| {
                let queue = Arc::clone(&queue);
                let metrics = Arc::clone(metrics);
                let cfg = config.clone();
                std::thread::Builder::new()
                    .name(format!("mfdfp-serve-{id}.{w}"))
                    .spawn(move || worker_loop(&queue, &metrics, &cfg))
                    .expect("failed to spawn serving worker")
            })
            .collect();
        Shard { queue, workers }
    }

    /// The shard's request queue (admission pushes into it).
    pub(crate) fn queue(&self) -> &BoundedQueue<Request> {
        &self.queue
    }

    /// Items currently queued on this shard.
    pub(crate) fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Stops admissions into this shard.
    pub(crate) fn close(&self) {
        self.queue.close();
    }

    /// Joins the shard's workers (the queue must already be closed).
    pub(crate) fn join(&mut self) {
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Drains the queue until close-and-empty: pops coalesced batches, sheds
/// expired requests, groups the rest per model, dispatches each group
/// through the batched quantized forward, scatters responses.
///
/// With the `parallel` feature, each per-model group is submitted to the
/// shared `mfdfp-rt` pool as one task instead of running unconditionally
/// on this worker thread: inference executes on the same persistent
/// threads the GEMM/conv kernels fan out on (no per-call thread
/// spawning anywhere in the dispatch), and multi-model batches run
/// their groups concurrently. The scope owner helps execute its own
/// tasks while it waits — a single-group batch typically runs on the
/// submitting worker itself (an idle pool worker may win the claim
/// first, at the cost of one hand-off), and a waiting serve worker is
/// itself a compute lane: the process computes on at most
/// `shards × workers + pool width − 1` threads (see README "Threading
/// model" for sizing guidance). Without the feature, groups run inline
/// and the pool is never engaged.
fn worker_loop(queue: &BoundedQueue<Request>, metrics: &ServerMetrics, cfg: &ServeConfig) {
    loop {
        // Batch formation spans the blocking pop + linger window, so the
        // trace shows how long each worker spent coalescing vs idle.
        let formed_from = mfdfp_obs::now_ns();
        let Some(batch) = queue.pop_batch(cfg.max_batch, cfg.max_wait) else {
            break;
        };
        mfdfp_obs::record_complete(
            "serve.batch_form",
            batch.len() as u64,
            formed_from,
            mfdfp_obs::now_ns(),
        );
        let batch = shed_expired(batch, metrics);
        if batch.is_empty() {
            continue;
        }
        let groups = partition_by_model(batch);
        run_groups(groups, metrics);
    }
}

/// Deadline-based load shedding: requests whose deadline passed while
/// they queued are answered with [`ServeError::DeadlineExceeded`] and
/// counted in the `shed` metrics — the datapath never runs for them.
/// One clock sample judges the whole batch, so a batch's shed decisions
/// are mutually consistent.
fn shed_expired(batch: Vec<Request>, metrics: &ServerMetrics) -> Vec<Request> {
    let now = Instant::now();
    if batch.iter().all(|r| r.deadline.is_none_or(|d| d > now)) {
        return batch;
    }
    let shed_from = mfdfp_obs::now_ns();
    let mut live = Vec::with_capacity(batch.len());
    let mut shed = 0u64;
    for request in batch {
        match request.deadline {
            Some(d) if d <= now => {
                metrics.record_shed();
                request.metrics_model.record_shed();
                request.metrics_model.release_slot();
                let err = ServeError::DeadlineExceeded { model: request.model_name.clone() };
                let _ = request.tx.send(Err(err));
                shed += 1;
            }
            _ => live.push(request),
        }
    }
    mfdfp_obs::record_complete("serve.shed", shed, shed_from, mfdfp_obs::now_ns());
    live
}

#[cfg(not(feature = "parallel"))]
fn run_groups(groups: Vec<Vec<Request>>, metrics: &ServerMetrics) {
    for group in groups {
        dispatch_group(group, metrics);
    }
}

#[cfg(feature = "parallel")]
fn run_groups(groups: Vec<Vec<Request>>, metrics: &ServerMetrics) {
    mfdfp_rt::global().scope(|scope| {
        for group in groups {
            scope.spawn(move || dispatch_group(group, metrics));
        }
    });
}

/// Splits a popped batch into per-model groups, preserving arrival order
/// within each group. Grouping keys on the resolved model's allocation
/// identity (not its name, so a name re-registered or hot-swapped
/// mid-queue never mixes two different networks — or two versions of one
/// network — into one batch) *and* the image element count, so two
/// same-length-checked but differently-sized inputs — possible when a
/// model exposes no `input_len` — can never misalign one batch.
fn partition_by_model(batch: Vec<Request>) -> Vec<Vec<Request>> {
    let mut groups: Vec<((usize, usize), Vec<Request>)> = Vec::new();
    for request in batch {
        let key = (request.model.identity(), request.image.len());
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, group)) => group.push(request),
            None => groups.push((key, vec![request])),
        }
    }
    groups.into_iter().map(|(_, g)| g).collect()
}

/// Per-worker dispatch scratch: the flattened input batch, the logits
/// output row-block (both grow-only) and the worker's own inference
/// [`Workspace`]. Owning the workspace here — rather than borrowing the
/// shared per-thread one — keeps that thread-level workspace free for
/// image-chunk tasks the pool may hand back to this same thread under
/// the `parallel` feature (the rt help-first protocol), so a warmed
/// dispatch's inference performs zero heap allocations on every path;
/// only the per-request response materialisation (one logits `Tensor`
/// per ticket, the channel send) still allocates, because those buffers
/// leave the worker with the response.
#[derive(Default)]
struct WorkerScratch {
    data: Vec<f32>,
    logits: Vec<f32>,
    ws: Workspace,
}

thread_local! {
    /// One staging scratch per worker thread — dispatch runs either on a
    /// serving worker (serial build) or on a persistent pool thread
    /// (`parallel` feature), and both live as long as the process.
    static WORKER_SCRATCH: RefCell<WorkerScratch> = RefCell::new(WorkerScratch::default());
}

/// Runs `f` with the calling thread's persistent staging scratch; falls
/// back to a fresh scratch if the thread is already dispatching (a pool
/// thread helping with a stolen dispatch task while its own inference
/// scope waits).
fn with_worker_scratch<R>(f: impl FnOnce(&mut WorkerScratch) -> R) -> R {
    WORKER_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut WorkerScratch::default()),
    })
}

/// Runs one same-model group as a single batched inference and answers
/// every member. Inference faults fan the error out to the whole group;
/// a *panicking* dispatch is contained by `catch_unwind` and fans out
/// [`ServeError::WorkerPanic`] instead — the worker thread survives and
/// no lock is poisoned (nothing in this function holds a lock across
/// the compute).
///
/// The batch is assembled flat (`N×len` — the integer datapath reads raw
/// element slices, so per-image shape is irrelevant): requests that were
/// admitted with equal element counts but different shapes, e.g. `[768]`
/// next to `[3,16,16]`, batch together instead of poisoning each other.
/// Staging and inference scratch come from the worker's persistent
/// buffers ([`WorkerScratch`] + the thread workspace), so a warmed
/// worker's steady-state compute performs zero heap allocations.
fn dispatch_group(group: Vec<Request>, metrics: &ServerMetrics) {
    let dispatched = Instant::now();
    let dispatched_ns = mfdfp_obs::now_ns();
    metrics.record_batch(group.len());
    group[0].metrics_model.record_batch(group.len());
    for request in &group {
        // `duration_since` saturates to zero, so a clock read that lands
        // between two threads' samples can never panic the worker.
        metrics.record_queue_wait(dispatched.duration_since(request.submitted));
        mfdfp_obs::record_complete(
            "serve.queue_wait",
            group.len() as u64,
            request.submitted_ns,
            dispatched_ns,
        );
    }
    let model = group[0].model.clone();
    let batch_size = group.len();
    let classes = model.classes();
    // The compute half runs under `catch_unwind` so an injected (or
    // real) panic degrades to a typed per-request error instead of
    // killing the worker; the group itself stays outside the closure so
    // its tickets can still be answered after an unwind.
    let inference = with_worker_scratch(|scratch| {
        catch_unwind(AssertUnwindSafe(|| {
            fault::maybe_slow_batch();
            fault::maybe_worker_panic();
            scratch.data.clear();
            for request in &group {
                scratch.data.extend_from_slice(request.image.as_slice());
            }
            scratch.logits.resize(batch_size * classes, 0.0);
            // Size the inference workspace for the batch-fused forward
            // (the whole batch runs as one interleaved layer loop, so
            // activation and im2col staging scale by the batch).
            // `reserve` on a warmed workspace is a no-op, so
            // steady-state dispatch stays allocation-free.
            scratch.ws.reserve(&model.plan_for_batch(batch_size));
            let infer_started = Instant::now();
            let inference = {
                let _span = mfdfp_obs::span!("serve.infer", batch_size as u64);
                model.logits_batch_into(
                    &scratch.data,
                    batch_size,
                    &mut scratch.ws,
                    &mut scratch.logits,
                )
            };
            metrics.record_infer(infer_started.elapsed());
            inference.map(|()| scratch.logits.clone())
        }))
    });
    match inference {
        Ok(Ok(logits)) => {
            let respond_started = Instant::now();
            let _span = mfdfp_obs::span!("serve.respond", batch_size as u64);
            for (row, request) in logits.chunks(classes).zip(group) {
                let latency = request.submitted.elapsed();
                request.metrics_model.record_completed(latency);
                request.metrics_model.release_slot();
                let logits = Tensor::from_slice(row);
                let response = Response {
                    model: request.model_name,
                    version: request.version,
                    class: logits.argmax(),
                    logits,
                    batch_size,
                    latency,
                };
                metrics.record_completed(response.latency);
                // A dropped Ticket is not an error; the work is done.
                let _ = request.tx.send(Ok(response));
            }
            metrics.record_respond(respond_started.elapsed());
        }
        Ok(Err(e)) => fail_group(group, metrics, ServeError::Inference(e)),
        Err(_panic) => fail_group(group, metrics, ServeError::WorkerPanic),
    }
}

/// Answers every member of a group with `err` and records the failures.
fn fail_group(group: Vec<Request>, metrics: &ServerMetrics, err: ServeError) {
    for request in group {
        let _ = request.tx.send(Err(err.clone()));
        metrics.record_failed();
        request.metrics_model.record_failed();
        request.metrics_model.release_slot();
    }
}
