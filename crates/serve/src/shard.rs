//! Worker shards: each shard is an independent (bounded queue +
//! micro-batcher worker pool) unit.
//!
//! The server routes a request to `hash(model name) % shards`, so two
//! independent models never contend on one queue and a slow model cannot
//! convoy a fast one. Inside a shard the pipeline is the PR-2
//! micro-batcher, extended with admission-control semantics:
//!
//! * **deadline shedding** — after popping a batch, the worker drops
//!   every request whose deadline already expired (typed
//!   [`ServeError::DeadlineExceeded`], counted in the `shed` metrics)
//!   *before* spending datapath time on it;
//! * **panic containment** — inference runs under `catch_unwind`; a
//!   panicking dispatch answers its whole batch with
//!   [`ServeError::WorkerPanic`] and the worker thread survives (no lock
//!   is held across the unwind, so nothing is poisoned);
//! * **priority lane** — the queue's priority lane is popped first and
//!   dispatched immediately (see
//!   [`BoundedQueue::pop_batch`](crate::BoundedQueue::pop_batch));
//! * **supervision** — every worker publishes a heartbeat (nanoseconds
//!   since the shard's origin instant, stored at the top of its loop;
//!   the ticked pop keeps idle workers beating). The server's supervisor
//!   calls [`Shard::supervise`] each control tick: a worker whose thread
//!   finished (death outside the dispatch containment) or whose beat is
//!   older than [`ServeConfig::hang_timeout`] is replaced crash-only — a
//!   fresh worker takes its queue slot immediately, the hung thread is
//!   detached (its in-flight batch still answers its tickets whenever
//!   the stall ends, because tickets and queue `Arc`s outlive the slot),
//!   and the respawn is counted;
//! * **adaptive degradation** — dispatch reads the server-wide degrade
//!   level and serves ensembles with that many members trimmed off the
//!   end (never below one); prefix summation order is unchanged, so a
//!   degraded `k`-member answer is bit-identical to a standalone
//!   `k`-member ensemble, and the response is flagged degraded;
//! * **circuit-breaker feedback** — each dispatched group reports its
//!   outcome (success / worker panic / inference fault) to the
//!   originating model's breaker exactly once per group.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mfdfp_tensor::{Tensor, Workspace};

use crate::breaker::CircuitBreaker;
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::fault;
use crate::metrics::ServerMetrics;
use crate::queue::{BoundedQueue, PopTick};
use crate::server::{Request, Response};

/// One worker thread's supervision slot: its join handle plus the
/// heartbeat it publishes (ns since the shard's origin).
struct WorkerSlot {
    handle: JoinHandle<()>,
    beat_ns: Arc<AtomicU64>,
}

/// The shard state shared between the server, its workers and the
/// supervisor (all hold `Arc`s, so a replaced worker never strands the
/// queue).
pub(crate) struct ShardInner {
    id: usize,
    queue: BoundedQueue<Request>,
    /// Heartbeat epoch: beats are ns since this instant, so one relaxed
    /// `u64` store publishes a beat.
    origin: Instant,
    workers: Mutex<Vec<WorkerSlot>>,
    /// Total workers ever spawned on this shard (names respawns
    /// uniquely: `mfdfp-serve-<shard>.<spawn#>`).
    spawned: AtomicU64,
}

impl ShardInner {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Spawns one worker thread and returns its supervision slot.
    fn spawn_worker(
        self: &Arc<Self>,
        metrics: &Arc<ServerMetrics>,
        cfg: &ServeConfig,
    ) -> WorkerSlot {
        let n = self.spawned.fetch_add(1, Ordering::Relaxed);
        let beat_ns = Arc::new(AtomicU64::new(self.now_ns()));
        let beat = Arc::clone(&beat_ns);
        let inner = Arc::clone(self);
        let metrics = Arc::clone(metrics);
        let cfg = cfg.clone();
        let handle = std::thread::Builder::new()
            .name(format!("mfdfp-serve-{}.{}", self.id, n))
            .spawn(move || worker_loop(&inner, &metrics, &cfg, &beat))
            .expect("failed to spawn serving worker");
        WorkerSlot { handle, beat_ns }
    }
}

/// One independent queue + worker-pool unit of a sharded server. Clones
/// share the same shard (the supervisor holds one per shard).
#[derive(Clone)]
pub(crate) struct Shard {
    inner: Arc<ShardInner>,
}

impl Shard {
    /// Spawns the shard's worker pool over a fresh bounded queue.
    pub(crate) fn start(id: usize, config: &ServeConfig, metrics: &Arc<ServerMetrics>) -> Shard {
        let inner = Arc::new(ShardInner {
            id,
            queue: BoundedQueue::new(config.queue_capacity),
            origin: Instant::now(),
            workers: Mutex::new(Vec::new()),
            spawned: AtomicU64::new(0),
        });
        let slots: Vec<WorkerSlot> =
            (0..config.workers).map(|_| inner.spawn_worker(metrics, config)).collect();
        *inner.workers.lock().expect("shard workers poisoned") = slots;
        Shard { inner }
    }

    /// The shard's request queue (admission pushes into it).
    pub(crate) fn queue(&self) -> &BoundedQueue<Request> {
        &self.inner.queue
    }

    /// Items currently queued on this shard.
    pub(crate) fn depth(&self) -> usize {
        self.inner.queue.len()
    }

    /// Stops admissions into this shard.
    pub(crate) fn close(&self) {
        self.inner.queue.close();
    }

    /// Joins the shard's workers (the queue must already be closed, and
    /// the supervisor stopped — otherwise it would respawn what we join).
    pub(crate) fn join(&mut self) {
        let slots: Vec<WorkerSlot> =
            std::mem::take(&mut *self.inner.workers.lock().expect("shard workers poisoned"));
        for slot in slots {
            let _ = slot.handle.join();
        }
    }

    /// One watchdog pass: replace every worker whose thread finished
    /// (died outside the dispatch containment) or whose heartbeat is
    /// older than [`ServeConfig::hang_timeout`]. Replacement is
    /// crash-only — the fresh worker starts pulling from the queue
    /// immediately; a dead thread is reaped, a hung one detached (its
    /// in-flight batch still answers whenever the stall ends). Each
    /// replacement bumps the `respawns` counter.
    pub(crate) fn supervise(&self, metrics: &Arc<ServerMetrics>, cfg: &ServeConfig) {
        let hang_ns = cfg.hang_timeout.as_nanos() as u64;
        let mut workers = self.inner.workers.lock().expect("shard workers poisoned");
        let now_ns = self.inner.now_ns();
        for slot in workers.iter_mut() {
            let dead = slot.handle.is_finished();
            let hung = now_ns.saturating_sub(slot.beat_ns.load(Ordering::Relaxed)) > hang_ns;
            if !(dead || hung) {
                continue;
            }
            let fresh = self.inner.spawn_worker(metrics, cfg);
            let old = std::mem::replace(slot, fresh);
            if dead {
                let _ = old.handle.join();
            }
            metrics.record_respawn();
        }
    }

    /// Each live worker's heartbeat age (for the health surface).
    pub(crate) fn heartbeat_ages(&self) -> Vec<Duration> {
        let workers = self.inner.workers.lock().expect("shard workers poisoned");
        let now_ns = self.inner.now_ns();
        workers
            .iter()
            .map(|s| Duration::from_nanos(now_ns.saturating_sub(s.beat_ns.load(Ordering::Relaxed))))
            .collect()
    }
}

/// Drains the queue until close-and-empty: pops coalesced batches, sheds
/// expired requests, groups the rest per model, dispatches each group
/// through the batched quantized forward, scatters responses.
///
/// With the `parallel` feature, each per-model group is submitted to the
/// shared `mfdfp-rt` pool as one task instead of running unconditionally
/// on this worker thread: inference executes on the same persistent
/// threads the GEMM/conv kernels fan out on (no per-call thread
/// spawning anywhere in the dispatch), and multi-model batches run
/// their groups concurrently. The scope owner helps execute its own
/// tasks while it waits — a single-group batch typically runs on the
/// submitting worker itself (an idle pool worker may win the claim
/// first, at the cost of one hand-off), and a waiting serve worker is
/// itself a compute lane: the process computes on at most
/// `shards × workers + pool width − 1` threads (see README "Threading
/// model" for sizing guidance). Without the feature, groups run inline
/// and the pool is never engaged.
fn worker_loop(inner: &ShardInner, metrics: &ServerMetrics, cfg: &ServeConfig, beat: &AtomicU64) {
    loop {
        // Heartbeat: published at the top of every iteration. The ticked
        // pop below returns `Idle` at least every `supervise_interval`,
        // so an idle worker keeps beating; a worker stuck inside a
        // dispatch stops beating and goes stale.
        beat.store(inner.now_ns(), Ordering::Relaxed);
        fault::maybe_worker_die();
        // Batch formation spans the blocking pop + linger window, so the
        // trace shows how long each worker spent coalescing vs idle.
        let formed_from = mfdfp_obs::now_ns();
        let batch =
            match inner.queue.pop_batch_ticked(cfg.max_batch, cfg.max_wait, cfg.supervise_interval)
            {
                PopTick::Idle => continue,
                PopTick::Closed => break,
                PopTick::Batch(batch) => batch,
            };
        mfdfp_obs::record_complete(
            "serve.batch_form",
            batch.len() as u64,
            formed_from,
            mfdfp_obs::now_ns(),
        );
        let batch = shed_expired(batch, metrics);
        if batch.is_empty() {
            continue;
        }
        let groups = partition_by_model(batch);
        run_groups(groups, metrics);
    }
}

/// Deadline-based load shedding: requests whose deadline passed while
/// they queued are answered with [`ServeError::DeadlineExceeded`] and
/// counted in the `shed` metrics — the datapath never runs for them.
/// One clock sample judges the whole batch, so a batch's shed decisions
/// are mutually consistent.
fn shed_expired(batch: Vec<Request>, metrics: &ServerMetrics) -> Vec<Request> {
    let now = Instant::now();
    if batch.iter().all(|r| r.deadline.is_none_or(|d| d > now)) {
        return batch;
    }
    let shed_from = mfdfp_obs::now_ns();
    let mut live = Vec::with_capacity(batch.len());
    let mut shed = 0u64;
    for request in batch {
        match request.deadline {
            Some(d) if d <= now => {
                metrics.record_shed();
                request.metrics_model.record_shed();
                request.metrics_model.release_slot();
                // The model was never exercised: release a held breaker
                // probe slot without judging the outcome.
                if let Some(b) = &request.breaker {
                    b.record_discarded();
                }
                let err = ServeError::DeadlineExceeded { model: request.model_name.clone() };
                let _ = request.tx.send(Err(err));
                shed += 1;
            }
            _ => live.push(request),
        }
    }
    mfdfp_obs::record_complete("serve.shed", shed, shed_from, mfdfp_obs::now_ns());
    live
}

#[cfg(not(feature = "parallel"))]
fn run_groups(groups: Vec<Vec<Request>>, metrics: &ServerMetrics) {
    for group in groups {
        dispatch_group(group, metrics);
    }
}

#[cfg(feature = "parallel")]
fn run_groups(groups: Vec<Vec<Request>>, metrics: &ServerMetrics) {
    mfdfp_rt::global().scope(|scope| {
        for group in groups {
            scope.spawn(move || dispatch_group(group, metrics));
        }
    });
}

/// Splits a popped batch into per-model groups, preserving arrival order
/// within each group. Grouping keys on the resolved model's allocation
/// identity (not its name, so a name re-registered or hot-swapped
/// mid-queue never mixes two different networks — or two versions of one
/// network — into one batch) *and* the image element count, so two
/// same-length-checked but differently-sized inputs — possible when a
/// model exposes no `input_len` — can never misalign one batch.
fn partition_by_model(batch: Vec<Request>) -> Vec<Vec<Request>> {
    let mut groups: Vec<((usize, usize), Vec<Request>)> = Vec::new();
    for request in batch {
        let key = (request.model.identity(), request.image.len());
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, group)) => group.push(request),
            None => groups.push((key, vec![request])),
        }
    }
    groups.into_iter().map(|(_, g)| g).collect()
}

/// Per-worker dispatch scratch: the flattened input batch, the logits
/// output row-block (both grow-only) and the worker's own inference
/// [`Workspace`]. Owning the workspace here — rather than borrowing the
/// shared per-thread one — keeps that thread-level workspace free for
/// image-chunk tasks the pool may hand back to this same thread under
/// the `parallel` feature (the rt help-first protocol), so a warmed
/// dispatch's inference performs zero heap allocations on every path;
/// only the per-request response materialisation (one logits `Tensor`
/// per ticket, the channel send) still allocates, because those buffers
/// leave the worker with the response.
#[derive(Default)]
struct WorkerScratch {
    data: Vec<f32>,
    logits: Vec<f32>,
    ws: Workspace,
}

thread_local! {
    /// One staging scratch per worker thread — dispatch runs either on a
    /// serving worker (serial build) or on a persistent pool thread
    /// (`parallel` feature), and both live as long as the process.
    static WORKER_SCRATCH: RefCell<WorkerScratch> = RefCell::new(WorkerScratch::default());
}

/// Runs `f` with the calling thread's persistent staging scratch; falls
/// back to a fresh scratch if the thread is already dispatching (a pool
/// thread helping with a stolen dispatch task while its own inference
/// scope waits).
fn with_worker_scratch<R>(f: impl FnOnce(&mut WorkerScratch) -> R) -> R {
    WORKER_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut WorkerScratch::default()),
    })
}

/// Runs one same-model group as a single batched inference and answers
/// every member. Inference faults fan the error out to the whole group;
/// a *panicking* dispatch is contained by `catch_unwind` and fans out
/// [`ServeError::WorkerPanic`] instead — the worker thread survives and
/// no lock is poisoned (nothing in this function holds a lock across
/// the compute).
///
/// The batch is assembled flat (`N×len` — the integer datapath reads raw
/// element slices, so per-image shape is irrelevant): requests that were
/// admitted with equal element counts but different shapes, e.g. `[768]`
/// next to `[3,16,16]`, batch together instead of poisoning each other.
/// Staging and inference scratch come from the worker's persistent
/// buffers ([`WorkerScratch`] + the thread workspace), so a warmed
/// worker's steady-state compute performs zero heap allocations.
fn dispatch_group(group: Vec<Request>, metrics: &ServerMetrics) {
    let dispatched = Instant::now();
    let dispatched_ns = mfdfp_obs::now_ns();
    metrics.record_batch(group.len());
    group[0].metrics_model.record_batch(group.len());
    for request in &group {
        // `duration_since` saturates to zero, so a clock read that lands
        // between two threads' samples can never panic the worker.
        metrics.record_queue_wait(dispatched.duration_since(request.submitted));
        mfdfp_obs::record_complete(
            "serve.queue_wait",
            group.len() as u64,
            request.submitted_ns,
            dispatched_ns,
        );
    }
    let model = group[0].model.clone();
    let batch_size = group.len();
    let classes = model.classes();
    // Adaptive degradation: the supervisor's level gauge trims that many
    // ensemble members off the end of the dispatch (never below one
    // member; single models are unaffected). Prefix order is unchanged,
    // so a degraded k-member answer is bit-identical to a standalone
    // k-member ensemble.
    let total_members = model.members();
    let level = (metrics.degrade_level() as usize).min(total_members.saturating_sub(1));
    let members = total_members - level;
    let degraded = members < total_members;
    // The compute half runs under `catch_unwind` so an injected (or
    // real) panic degrades to a typed per-request error instead of
    // killing the worker; the group itself stays outside the closure so
    // its tickets can still be answered after an unwind.
    let inference = with_worker_scratch(|scratch| {
        catch_unwind(AssertUnwindSafe(|| {
            fault::maybe_worker_hang();
            fault::maybe_slow_batch();
            fault::maybe_worker_panic();
            scratch.data.clear();
            for request in &group {
                scratch.data.extend_from_slice(request.image.as_slice());
            }
            scratch.logits.resize(batch_size * classes, 0.0);
            // Size the inference workspace for the batch-fused forward
            // (the whole batch runs as one interleaved layer loop, so
            // activation and im2col staging scale by the batch).
            // `reserve` on a warmed workspace is a no-op, so
            // steady-state dispatch stays allocation-free.
            scratch.ws.reserve(&model.plan_for_batch(batch_size));
            let infer_started = Instant::now();
            let inference = {
                let _span = mfdfp_obs::span!("serve.infer", batch_size as u64);
                model.logits_batch_into(
                    &scratch.data,
                    batch_size,
                    &mut scratch.ws,
                    &mut scratch.logits,
                    members,
                )
            };
            metrics.record_infer(infer_started.elapsed());
            inference.map(|()| scratch.logits.clone())
        }))
    });
    match inference {
        Ok(Ok(logits)) => {
            record_group_outcome(&group, metrics, true);
            let respond_started = Instant::now();
            let _span = mfdfp_obs::span!("serve.respond", batch_size as u64);
            for (row, request) in logits.chunks(classes).zip(group) {
                let latency = request.submitted.elapsed();
                request.metrics_model.record_completed(latency);
                request.metrics_model.release_slot();
                if degraded {
                    metrics.record_degraded();
                }
                let logits = Tensor::from_slice(row);
                let response = Response {
                    model: request.model_name,
                    version: request.version,
                    class: logits.argmax(),
                    logits,
                    batch_size,
                    latency,
                    degraded,
                };
                metrics.record_completed(response.latency);
                // A dropped Ticket is not an error; the work is done.
                let _ = request.tx.send(Ok(response));
            }
            metrics.record_respond(respond_started.elapsed());
        }
        Ok(Err(e)) => {
            record_group_outcome(&group, metrics, false);
            fail_group(group, metrics, ServeError::Inference(e));
        }
        Err(_panic) => {
            record_group_outcome(&group, metrics, false);
            fail_group(group, metrics, ServeError::WorkerPanic);
        }
    }
}

/// Reports a dispatched group's outcome to each *distinct* breaker in it
/// exactly once (groups key on model identity, so two registry names
/// sharing one network can land in one group — each name's breaker gets
/// one verdict, never one per request). A trip bumps `breaker_opens`.
fn record_group_outcome(group: &[Request], metrics: &ServerMetrics, success: bool) {
    let now = Instant::now();
    let mut seen: Vec<*const CircuitBreaker> = Vec::new();
    for request in group {
        let Some(breaker) = &request.breaker else { continue };
        let ptr = Arc::as_ptr(breaker);
        if seen.contains(&ptr) {
            continue;
        }
        seen.push(ptr);
        if success {
            breaker.record_success();
        } else if breaker.record_failure(now) {
            metrics.record_breaker_open();
        }
    }
}

/// Answers every member of a group with `err` and records the failures.
fn fail_group(group: Vec<Request>, metrics: &ServerMetrics, err: ServeError) {
    for request in group {
        // Count before answering: a client that wakes on this error and
        // immediately snapshots the metrics must already see its failure
        // counted (the success path orders itself the same way).
        metrics.record_failed();
        request.metrics_model.record_failed();
        request.metrics_model.release_slot();
        let _ = request.tx.send(Err(err.clone()));
    }
}
