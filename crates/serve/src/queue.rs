//! Bounded multi-producer/multi-consumer request queue.
//!
//! `std`-only (Mutex + Condvar): producers never block — a full queue
//! rejects the push so admission control can surface backpressure to the
//! client immediately — while consumers block, batch-aware: a consumer
//! pops one item and then *lingers* up to a deadline to coalesce more,
//! which is the heart of the micro-batcher.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushRejection {
    /// The queue held `capacity` items.
    Full,
    /// The queue was closed.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with non-blocking producers and batch-popping
/// consumers.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::with_capacity(capacity), closed: false }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue without blocking; on rejection the item is
    /// handed back alongside the reason.
    ///
    /// # Errors
    ///
    /// [`PushRejection::Full`] at capacity, [`PushRejection::Closed`]
    /// after [`BoundedQueue::close`].
    #[allow(clippy::result_large_err)] // rejection intentionally returns the item
    pub fn try_push(&self, item: T) -> Result<(), (T, PushRejection)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err((item, PushRejection::Closed));
        }
        if inner.items.len() >= self.capacity {
            return Err((item, PushRejection::Full));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pops a batch: blocks until at least one item is available (or the
    /// queue is closed *and* drained, returning `None`), then keeps
    /// coalescing until the batch holds `max` items or `max_wait` has
    /// elapsed since the first pop.
    ///
    /// After `close()`, queued items keep being returned until the queue
    /// drains — shutdown is graceful, not lossy.
    pub fn pop_batch(&self, max: usize, max_wait: Duration) -> Option<Vec<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if !inner.items.is_empty() {
                break;
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
        let mut batch = Vec::with_capacity(max.min(inner.items.len()));
        let deadline = Instant::now() + max_wait;
        loop {
            while batch.len() < max {
                match inner.items.pop_front() {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            if batch.len() >= max || inner.closed {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) =
                self.not_empty.wait_timeout(inner, deadline - now).expect("queue poisoned");
            inner = guard;
            if timeout.timed_out() && inner.items.is_empty() {
                break;
            }
        }
        // Items may remain (batch clipped at `max`): pass the baton so
        // sibling consumers do not sleep on a non-empty queue.
        if !inner.items.is_empty() {
            drop(inner);
            self.not_empty.notify_one();
        }
        Some(batch)
    }

    /// Closes the queue: producers are rejected from now on, consumers
    /// drain what remains and then observe `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_when_closed() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        let (item, why) = q.try_push(3).unwrap_err();
        assert_eq!((item, why), (3, PushRejection::Full));
        assert_eq!(q.len(), 2);
        q.close();
        let (_, why) = q.try_push(4).unwrap_err();
        assert_eq!(why, PushRejection::Closed);
    }

    #[test]
    fn pop_batch_coalesces_up_to_max() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let batch = q.pop_batch(3, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![0, 1, 2]);
        let rest = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(rest, vec![3, 4]);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.pop_batch(4, Duration::ZERO), Some(vec![7]));
        assert_eq!(q.pop_batch(4, Duration::ZERO), None);
        assert!(q.is_closed());
    }

    #[test]
    fn blocked_consumer_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_batch(4, Duration::from_millis(1)));
        // The consumer may or may not have parked yet; the push must wake
        // it either way.
        std::thread::sleep(Duration::from_millis(5));
        q.try_push(42).unwrap();
        let got = consumer.join().unwrap().unwrap();
        assert!(got.contains(&42));
    }

    #[test]
    fn lingering_consumer_picks_up_late_arrivals() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            q2.try_push(2).unwrap();
        });
        // Generous linger so the late push lands within the window even on
        // a loaded single-CPU host.
        let batch = q.pop_batch(2, Duration::from_secs(5)).unwrap();
        producer.join().unwrap();
        assert_eq!(batch, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedQueue::<i32>::new(0);
    }
}
