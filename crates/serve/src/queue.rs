//! Bounded multi-producer/multi-consumer request queue.
//!
//! `std`-only (Mutex + Condvar): producers never block — a full queue
//! rejects the push so admission control can surface backpressure to the
//! client immediately — while consumers block, batch-aware: a consumer
//! pops one item and then *lingers* up to a deadline to coalesce more,
//! which is the heart of the micro-batcher.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushRejection {
    /// The queue held `capacity` items.
    Full,
    /// The queue was closed.
    Closed,
}

/// Outcome of a [`BoundedQueue::pop_batch_ticked`] call.
#[derive(Debug, PartialEq, Eq)]
pub enum PopTick<T> {
    /// At least one item arrived; a batch was formed as in
    /// [`BoundedQueue::pop_batch`].
    Batch(Vec<T>),
    /// Nothing arrived within the tick; the consumer gets control back
    /// (to heartbeat, in the serve workers) and should call again.
    Idle,
    /// The queue is closed and fully drained.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    /// The latency-sensitive lane: popped before `items`, dispatched
    /// without the linger window so priority requests never wait on a
    /// throughput batch forming around them.
    priority: VecDeque<T>,
    closed: bool,
}

impl<T> Inner<T> {
    fn len(&self) -> usize {
        self.items.len() + self.priority.len()
    }
}

/// A bounded MPMC queue with non-blocking producers, batch-popping
/// consumers and a priority lane.
///
/// The capacity bound covers both lanes together (one admission-control
/// budget), but consumers always drain the priority lane first — and a
/// priority pop returns immediately instead of lingering to coalesce,
/// which is what makes the lane useful for latency-sensitive batch-1
/// requests.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                priority: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (both lanes).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue without blocking; on rejection the item is
    /// handed back alongside the reason.
    ///
    /// # Errors
    ///
    /// [`PushRejection::Full`] at capacity, [`PushRejection::Closed`]
    /// after [`BoundedQueue::close`].
    #[allow(clippy::result_large_err)] // rejection intentionally returns the item
    pub fn try_push(&self, item: T) -> Result<(), (T, PushRejection)> {
        self.push_lane(item, false)
    }

    /// [`BoundedQueue::try_push`] into the priority lane: the item is
    /// popped before any normal-lane item, and the consumer that takes it
    /// returns immediately instead of lingering for a batch.
    ///
    /// # Errors
    ///
    /// As [`BoundedQueue::try_push`] — both lanes share one capacity.
    #[allow(clippy::result_large_err)] // rejection intentionally returns the item
    pub fn try_push_priority(&self, item: T) -> Result<(), (T, PushRejection)> {
        self.push_lane(item, true)
    }

    #[allow(clippy::result_large_err)]
    fn push_lane(&self, item: T, priority: bool) -> Result<(), (T, PushRejection)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err((item, PushRejection::Closed));
        }
        if inner.len() >= self.capacity {
            return Err((item, PushRejection::Full));
        }
        if priority {
            inner.priority.push_back(item);
        } else {
            inner.items.push_back(item);
        }
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pops a batch: blocks until at least one item is available (or the
    /// queue is closed *and* drained, returning `None`).
    ///
    /// Priority-lane items win: if any are queued, up to `max` of them
    /// are returned **immediately** — no linger window — so a
    /// latency-sensitive request never waits for a throughput batch to
    /// form. Otherwise the consumer pops normal-lane items and keeps
    /// coalescing until the batch holds `max` items, `max_wait` has
    /// elapsed since the first pop, or a priority item arrives (the
    /// in-progress batch dispatches at once so the next pop can take the
    /// priority item without waiting out the linger).
    ///
    /// After `close()`, queued items keep being returned until the queue
    /// drains — shutdown is graceful, not lossy.
    pub fn pop_batch(&self, max: usize, max_wait: Duration) -> Option<Vec<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if inner.len() > 0 {
                break;
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
        Some(self.form_batch(inner, max, max_wait))
    }

    /// [`BoundedQueue::pop_batch`] with a bounded park: instead of
    /// blocking indefinitely on an empty queue, the consumer gets
    /// control back after `tick` with [`PopTick::Idle`]. This is how a
    /// serve worker parked on an idle queue still beats its heartbeat —
    /// the watchdog can then apply one uniform "stale heartbeat ⇒ hung"
    /// rule whether a worker is stuck in dispatch or healthy-but-idle.
    pub fn pop_batch_ticked(&self, max: usize, max_wait: Duration, tick: Duration) -> PopTick<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        let tick_deadline = Instant::now() + tick;
        loop {
            if inner.len() > 0 {
                break;
            }
            if inner.closed {
                return PopTick::Closed;
            }
            let now = Instant::now();
            if now >= tick_deadline {
                return PopTick::Idle;
            }
            let (guard, _) =
                self.not_empty.wait_timeout(inner, tick_deadline - now).expect("queue poisoned");
            inner = guard;
        }
        PopTick::Batch(self.form_batch(inner, max, max_wait))
    }

    /// Forms a batch starting from a non-empty queue whose lock the
    /// caller already holds (the shared tail of both pop entries).
    fn form_batch(
        &self,
        mut inner: MutexGuard<'_, Inner<T>>,
        max: usize,
        max_wait: Duration,
    ) -> Vec<T> {
        if !inner.priority.is_empty() {
            let take = max.max(1).min(inner.priority.len());
            let batch: Vec<T> = inner.priority.drain(..take).collect();
            if inner.len() > 0 {
                drop(inner);
                self.not_empty.notify_one();
            }
            return batch;
        }
        let mut batch = Vec::with_capacity(max.min(inner.items.len()));
        let deadline = Instant::now() + max_wait;
        loop {
            while batch.len() < max {
                match inner.items.pop_front() {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            if batch.len() >= max || inner.closed || !inner.priority.is_empty() {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) =
                self.not_empty.wait_timeout(inner, deadline - now).expect("queue poisoned");
            inner = guard;
            if timeout.timed_out() && inner.items.is_empty() {
                break;
            }
        }
        // Items may remain (batch clipped at `max`, or a priority arrival
        // cut the linger short): pass the baton so sibling consumers do
        // not sleep on a non-empty queue.
        if inner.len() > 0 {
            drop(inner);
            self.not_empty.notify_one();
        }
        batch
    }

    /// Drains every queued item without blocking, priority lane first —
    /// the bounded-drain shutdown path, which *answers* whatever is
    /// still queued at the drain deadline instead of waiting for the
    /// workers to compute it.
    pub fn drain_pending(&self) -> Vec<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        let mut out: Vec<T> = inner.priority.drain(..).collect();
        out.extend(inner.items.drain(..));
        out
    }

    /// Closes the queue: producers are rejected from now on, consumers
    /// drain what remains and then observe `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_when_closed() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        let (item, why) = q.try_push(3).unwrap_err();
        assert_eq!((item, why), (3, PushRejection::Full));
        assert_eq!(q.len(), 2);
        q.close();
        let (_, why) = q.try_push(4).unwrap_err();
        assert_eq!(why, PushRejection::Closed);
    }

    #[test]
    fn pop_batch_coalesces_up_to_max() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let batch = q.pop_batch(3, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![0, 1, 2]);
        let rest = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(rest, vec![3, 4]);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.pop_batch(4, Duration::ZERO), Some(vec![7]));
        assert_eq!(q.pop_batch(4, Duration::ZERO), None);
        assert!(q.is_closed());
    }

    #[test]
    fn blocked_consumer_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_batch(4, Duration::from_millis(1)));
        // The consumer may or may not have parked yet; the push must wake
        // it either way.
        std::thread::sleep(Duration::from_millis(5));
        q.try_push(42).unwrap();
        let got = consumer.join().unwrap().unwrap();
        assert!(got.contains(&42));
    }

    #[test]
    fn lingering_consumer_picks_up_late_arrivals() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            q2.try_push(2).unwrap();
        });
        // Generous linger so the late push lands within the window even on
        // a loaded single-CPU host.
        let batch = q.pop_batch(2, Duration::from_secs(5)).unwrap();
        producer.join().unwrap();
        assert_eq!(batch, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedQueue::<i32>::new(0);
    }

    #[test]
    fn priority_items_pop_first_and_do_not_linger() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.try_push_priority(10).unwrap();
        // Even with a generous linger, the priority item returns alone and
        // immediately (a stuck linger here would hang the test).
        let started = Instant::now();
        let batch = q.pop_batch(8, Duration::from_secs(30)).unwrap();
        assert_eq!(batch, vec![10]);
        assert!(started.elapsed() < Duration::from_secs(5));
        // The normal lane is intact and still coalesces.
        let rest = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(rest, vec![1, 2]);
    }

    #[test]
    fn both_lanes_share_one_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push_priority(2).unwrap();
        assert_eq!(q.len(), 2);
        let (_, why) = q.try_push(3).unwrap_err();
        assert_eq!(why, PushRejection::Full);
        let (_, why) = q.try_push_priority(4).unwrap_err();
        assert_eq!(why, PushRejection::Full);
    }

    #[test]
    fn ticked_pop_reports_idle_batches_and_closure() {
        let q = BoundedQueue::new(8);
        // Empty + open: the tick elapses and control comes back.
        let started = Instant::now();
        assert_eq!(q.pop_batch_ticked(4, Duration::ZERO, Duration::from_millis(5)), PopTick::Idle);
        assert!(started.elapsed() >= Duration::from_millis(5));
        // Items present: batches form exactly as in pop_batch.
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.try_push_priority(9).unwrap();
        assert_eq!(
            q.pop_batch_ticked(4, Duration::from_secs(30), Duration::from_secs(30)),
            PopTick::Batch(vec![9]),
            "priority items must pop first and without lingering"
        );
        assert_eq!(
            q.pop_batch_ticked(4, Duration::ZERO, Duration::from_secs(30)),
            PopTick::Batch(vec![1, 2])
        );
        // Closed + drained: terminal.
        q.close();
        assert_eq!(q.pop_batch_ticked(4, Duration::ZERO, Duration::from_secs(30)), PopTick::Closed);
    }

    #[test]
    fn ticked_pop_wakes_on_push_before_the_tick() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            q2.pop_batch_ticked(4, Duration::from_millis(1), Duration::from_secs(30))
        });
        std::thread::sleep(Duration::from_millis(5));
        q.try_push(42).unwrap();
        match consumer.join().unwrap() {
            PopTick::Batch(batch) => assert!(batch.contains(&42)),
            other => panic!("expected a batch, got {other:?}"),
        }
    }

    #[test]
    fn drain_pending_empties_both_lanes_without_blocking() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.try_push_priority(9).unwrap();
        assert_eq!(q.drain_pending(), vec![9, 1, 2], "priority lane drains first");
        assert!(q.is_empty());
        assert_eq!(q.drain_pending(), Vec::<i32>::new());
    }

    #[test]
    fn priority_arrival_cuts_a_linger_short() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            q2.try_push_priority(9).unwrap();
        });
        // The consumer starts a long linger on the normal item; the
        // priority arrival must dispatch the in-progress batch at once
        // (a 30 s linger that ran to completion would hang the test). If
        // the producer wins the race outright, the priority item simply
        // pops first — either way the two items must arrive in two
        // separate batches, never coalesced across lanes.
        let first = q.pop_batch(8, Duration::from_secs(30)).unwrap();
        producer.join().unwrap();
        let second = q.pop_batch(8, Duration::from_secs(30)).unwrap();
        let mut seen = [first, second];
        seen.sort();
        assert_eq!(seen, [vec![1], vec![9]]);
    }
}
