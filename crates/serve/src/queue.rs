//! Bounded multi-producer/multi-consumer request queue.
//!
//! `std`-only (Mutex + Condvar): producers never block — a full queue
//! rejects the push so admission control can surface backpressure to the
//! client immediately — while consumers block, batch-aware: a consumer
//! pops one item and then *lingers* up to a deadline to coalesce more,
//! which is the heart of the micro-batcher.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushRejection {
    /// The queue held `capacity` items.
    Full,
    /// The queue was closed.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    /// The latency-sensitive lane: popped before `items`, dispatched
    /// without the linger window so priority requests never wait on a
    /// throughput batch forming around them.
    priority: VecDeque<T>,
    closed: bool,
}

impl<T> Inner<T> {
    fn len(&self) -> usize {
        self.items.len() + self.priority.len()
    }
}

/// A bounded MPMC queue with non-blocking producers, batch-popping
/// consumers and a priority lane.
///
/// The capacity bound covers both lanes together (one admission-control
/// budget), but consumers always drain the priority lane first — and a
/// priority pop returns immediately instead of lingering to coalesce,
/// which is what makes the lane useful for latency-sensitive batch-1
/// requests.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                priority: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (both lanes).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue without blocking; on rejection the item is
    /// handed back alongside the reason.
    ///
    /// # Errors
    ///
    /// [`PushRejection::Full`] at capacity, [`PushRejection::Closed`]
    /// after [`BoundedQueue::close`].
    #[allow(clippy::result_large_err)] // rejection intentionally returns the item
    pub fn try_push(&self, item: T) -> Result<(), (T, PushRejection)> {
        self.push_lane(item, false)
    }

    /// [`BoundedQueue::try_push`] into the priority lane: the item is
    /// popped before any normal-lane item, and the consumer that takes it
    /// returns immediately instead of lingering for a batch.
    ///
    /// # Errors
    ///
    /// As [`BoundedQueue::try_push`] — both lanes share one capacity.
    #[allow(clippy::result_large_err)] // rejection intentionally returns the item
    pub fn try_push_priority(&self, item: T) -> Result<(), (T, PushRejection)> {
        self.push_lane(item, true)
    }

    #[allow(clippy::result_large_err)]
    fn push_lane(&self, item: T, priority: bool) -> Result<(), (T, PushRejection)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err((item, PushRejection::Closed));
        }
        if inner.len() >= self.capacity {
            return Err((item, PushRejection::Full));
        }
        if priority {
            inner.priority.push_back(item);
        } else {
            inner.items.push_back(item);
        }
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pops a batch: blocks until at least one item is available (or the
    /// queue is closed *and* drained, returning `None`).
    ///
    /// Priority-lane items win: if any are queued, up to `max` of them
    /// are returned **immediately** — no linger window — so a
    /// latency-sensitive request never waits for a throughput batch to
    /// form. Otherwise the consumer pops normal-lane items and keeps
    /// coalescing until the batch holds `max` items, `max_wait` has
    /// elapsed since the first pop, or a priority item arrives (the
    /// in-progress batch dispatches at once so the next pop can take the
    /// priority item without waiting out the linger).
    ///
    /// After `close()`, queued items keep being returned until the queue
    /// drains — shutdown is graceful, not lossy.
    pub fn pop_batch(&self, max: usize, max_wait: Duration) -> Option<Vec<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if inner.len() > 0 {
                break;
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
        if !inner.priority.is_empty() {
            let take = max.max(1).min(inner.priority.len());
            let batch: Vec<T> = inner.priority.drain(..take).collect();
            if inner.len() > 0 {
                drop(inner);
                self.not_empty.notify_one();
            }
            return Some(batch);
        }
        let mut batch = Vec::with_capacity(max.min(inner.items.len()));
        let deadline = Instant::now() + max_wait;
        loop {
            while batch.len() < max {
                match inner.items.pop_front() {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            if batch.len() >= max || inner.closed || !inner.priority.is_empty() {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) =
                self.not_empty.wait_timeout(inner, deadline - now).expect("queue poisoned");
            inner = guard;
            if timeout.timed_out() && inner.items.is_empty() {
                break;
            }
        }
        // Items may remain (batch clipped at `max`, or a priority arrival
        // cut the linger short): pass the baton so sibling consumers do
        // not sleep on a non-empty queue.
        if inner.len() > 0 {
            drop(inner);
            self.not_empty.notify_one();
        }
        Some(batch)
    }

    /// Closes the queue: producers are rejected from now on, consumers
    /// drain what remains and then observe `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_when_closed() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        let (item, why) = q.try_push(3).unwrap_err();
        assert_eq!((item, why), (3, PushRejection::Full));
        assert_eq!(q.len(), 2);
        q.close();
        let (_, why) = q.try_push(4).unwrap_err();
        assert_eq!(why, PushRejection::Closed);
    }

    #[test]
    fn pop_batch_coalesces_up_to_max() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let batch = q.pop_batch(3, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![0, 1, 2]);
        let rest = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(rest, vec![3, 4]);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.pop_batch(4, Duration::ZERO), Some(vec![7]));
        assert_eq!(q.pop_batch(4, Duration::ZERO), None);
        assert!(q.is_closed());
    }

    #[test]
    fn blocked_consumer_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_batch(4, Duration::from_millis(1)));
        // The consumer may or may not have parked yet; the push must wake
        // it either way.
        std::thread::sleep(Duration::from_millis(5));
        q.try_push(42).unwrap();
        let got = consumer.join().unwrap().unwrap();
        assert!(got.contains(&42));
    }

    #[test]
    fn lingering_consumer_picks_up_late_arrivals() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            q2.try_push(2).unwrap();
        });
        // Generous linger so the late push lands within the window even on
        // a loaded single-CPU host.
        let batch = q.pop_batch(2, Duration::from_secs(5)).unwrap();
        producer.join().unwrap();
        assert_eq!(batch, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedQueue::<i32>::new(0);
    }

    #[test]
    fn priority_items_pop_first_and_do_not_linger() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.try_push_priority(10).unwrap();
        // Even with a generous linger, the priority item returns alone and
        // immediately (a stuck linger here would hang the test).
        let started = Instant::now();
        let batch = q.pop_batch(8, Duration::from_secs(30)).unwrap();
        assert_eq!(batch, vec![10]);
        assert!(started.elapsed() < Duration::from_secs(5));
        // The normal lane is intact and still coalesces.
        let rest = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(rest, vec![1, 2]);
    }

    #[test]
    fn both_lanes_share_one_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push_priority(2).unwrap();
        assert_eq!(q.len(), 2);
        let (_, why) = q.try_push(3).unwrap_err();
        assert_eq!(why, PushRejection::Full);
        let (_, why) = q.try_push_priority(4).unwrap_err();
        assert_eq!(why, PushRejection::Full);
    }

    #[test]
    fn priority_arrival_cuts_a_linger_short() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            q2.try_push_priority(9).unwrap();
        });
        // The consumer starts a long linger on the normal item; the
        // priority arrival must dispatch the in-progress batch at once
        // (a 30 s linger that ran to completion would hang the test). If
        // the producer wins the race outright, the priority item simply
        // pops first — either way the two items must arrive in two
        // separate batches, never coalesced across lanes.
        let first = q.pop_batch(8, Duration::from_secs(30)).unwrap();
        producer.join().unwrap();
        let second = q.pop_batch(8, Duration::from_secs(30)).unwrap();
        let mut seen = [first, second];
        seen.sort();
        assert_eq!(seen, [vec![1], vec![9]]);
    }
}
